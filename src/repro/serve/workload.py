"""Seeded closed-loop workloads for the serving layer.

A workload is a set of :class:`ClientScript`\\ s: each simulated client
issues its queries one at a time, thinking for a sampled interval
between the completion of one query and the issue of the next (the
closed-loop model the broker's event pump executes).  Everything is
drawn from ``np.random.default_rng(seed)`` over a profile extracted
from the store itself, so a (store, seed, knobs) triple always yields
the byte-identical workload -- the property the serving benchmark's
baseline comparison rests on.

Query mix and skew follow the interactive-analysis shape: term
searches and pseudo-signature queries over a rank-biased term pool
(frequent model terms are queried more), k-NN jumps from recently
"read" documents, cluster summaries, and landscape-region probes.  A
configurable fraction of queries repeats from a small hot pool, which
is what gives the result cache something to do.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.serve.query import Query
from repro.serve.store import StoreManifest, load_manifest, load_model

#: default query-kind mix (must sum to 1)
DEFAULT_MIX: dict[str, float] = {
    "search": 0.35,
    "query": 0.15,
    "similar": 0.20,
    "cluster": 0.15,
    "region": 0.15,
}


@dataclass(frozen=True)
class ClientScript:
    """One client's scripted session.

    ``think_s[i]`` is the virtual think time between the completion of
    query ``i - 1`` (session start for ``i = 0``) and the issue of
    query ``i``.  ``priority`` is the client's admission class for the
    replicated tier's load shedding: 0 is the highest class; larger
    values shed first under overload.  The single-broker path ignores
    it.  ``tenant`` is the client's workbench billing identity (quota
    and artifact-cache scope); plain broker serving ignores it.
    """

    client: int
    queries: tuple[Query, ...]
    think_s: tuple[float, ...]
    priority: int = 0
    tenant: int = 0


@dataclass(frozen=True)
class StoreProfile:
    """What the generator needs to know about a store.

    ``facet_range``/``n_sources`` describe a stamped store's facet
    envelope (``None``/``0`` for unstamped stores); the dashboard
    workload generator needs them, the classic generators ignore them.
    """

    terms: tuple[str, ...]
    doc_ids: tuple[int, ...]
    n_clusters: int
    bbox: tuple[float, float, float, float]
    facet_range: tuple[float, float] | None = None
    n_sources: int = 0


def store_profile(store_dir: str | os.PathLike) -> StoreProfile:
    """Extract a workload profile from a store directory."""
    manifest: StoreManifest = load_manifest(store_dir)
    model = load_model(store_dir)
    # shard boundary doc ids bracket the id space; sampling uniformly
    # between doc_lo/doc_hi per shard keeps ids inside real ranges
    doc_ids: list[int] = []
    for s in manifest.shards:
        if s.n_docs:
            doc_ids.extend((s.doc_lo, s.doc_hi))
    fac = manifest.facets
    return StoreProfile(
        terms=tuple(model.terms),
        doc_ids=tuple(doc_ids),
        n_clusters=int(model.centroids.shape[0]),
        bbox=manifest.bbox,
        facet_range=(
            (fac.stamp_lo, fac.stamp_hi) if fac is not None else None
        ),
        n_sources=fac.n_sources if fac is not None else 0,
    )


def _rank_biased_term(rng: np.random.Generator, terms: tuple[str, ...]) -> str:
    """Sample a model term with probability decaying in rank."""
    n = len(terms)
    # geometric-ish decay truncated to the dictionary
    r = int(rng.geometric(p=min(0.05, 10.0 / max(n, 1))))
    return terms[min(r - 1, n - 1)]


def _make_query(
    rng: np.random.Generator,
    profile: StoreProfile,
    kinds: list[str],
    cum: np.ndarray,
) -> Query:
    kind = kinds[int(np.searchsorted(cum, rng.random(), side="right"))]
    if kind in ("search", "query"):
        n_terms = 1 + int(rng.integers(0, 3))
        terms = tuple(
            _rank_biased_term(rng, profile.terms) for _ in range(n_terms)
        )
        return Query(kind=kind, terms=terms, k=10)
    if kind == "similar":
        doc = int(profile.doc_ids[int(rng.integers(len(profile.doc_ids)))])
        return Query(kind="similar", doc_id=doc, k=10)
    if kind == "cluster":
        c = int(rng.integers(profile.n_clusters))
        return Query(kind="cluster", cluster=c)
    x0, y0, x1, y1 = profile.bbox
    x = float(x0 + (x1 - x0) * rng.random())
    y = float(y0 + (y1 - y0) * rng.random())
    radius = float(0.05 + 0.20 * rng.random()) * max(
        x1 - x0, y1 - y0, 1e-9
    )
    return Query(kind="region", x=x, y=y, radius=radius)


def _client_priorities(
    n_clients: int,
    seed: int,
    priority_classes: tuple[int, ...],
    priority_weights: tuple[float, ...] | None,
) -> list[int]:
    """Seeded per-client priority assignment.

    Drawn from a *separate* rng stream (derived from ``seed``) so
    tagging a workload with priorities never perturbs its query or
    think-time draws -- the byte-identity of an untagged workload is
    load-bearing for every baseline comparison.
    """
    if len(priority_classes) == 1:
        return [int(priority_classes[0])] * n_clients
    if any(p < 0 for p in priority_classes):
        raise ValueError(
            f"priority classes must be >= 0: {priority_classes}"
        )
    if priority_weights is None:
        weights = np.full(len(priority_classes), 1.0)
    else:
        if len(priority_weights) != len(priority_classes):
            raise ValueError(
                "priority_weights must match priority_classes: "
                f"{priority_weights} vs {priority_classes}"
            )
        weights = np.array(priority_weights, dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError(f"priority weights have no mass: {priority_weights}")
    rng = np.random.default_rng((seed, 0x70))
    cum = np.cumsum(weights / weights.sum())
    return [
        int(
            priority_classes[
                int(np.searchsorted(cum, rng.random(), side="right"))
            ]
        )
        for _ in range(n_clients)
    ]


def client_tenants(
    n_clients: int, seed: int, n_tenants: int
) -> list[int]:
    """Seeded per-client tenant assignment.

    Mirrors :func:`_client_priorities`: tenants come from a *separate*
    rng stream derived from ``seed`` (a distinct stream key, so
    tenant-tagging composes with priority-tagging), and the default
    single tenant draws nothing at all -- an untagged workload's query
    and think-time streams stay byte-identical.
    """
    if n_tenants <= 1:
        return [0] * n_clients
    rng = np.random.default_rng((seed, 0x7E))
    return [int(rng.integers(n_tenants)) for _ in range(n_clients)]


def generate_workload(
    profile: StoreProfile,
    n_clients: int = 4,
    queries_per_client: int = 25,
    seed: int = 0,
    mix: dict[str, float] | None = None,
    hot_fraction: float = 0.3,
    hot_pool: int = 8,
    mean_think_s: float = 0.05,
    priority_classes: tuple[int, ...] = (0,),
    priority_weights: tuple[float, ...] | None = None,
    n_tenants: int = 1,
) -> list[ClientScript]:
    """Generate a seeded closed-loop workload over a store profile.

    ``hot_fraction`` of queries repeat from a shared ``hot_pool`` of
    popular queries (cache fodder); the rest are fresh draws.  Think
    times are exponential with mean ``mean_think_s`` virtual seconds.
    ``priority_classes`` (with optional ``priority_weights``) tags
    each client with a seeded admission class; ``n_tenants`` tags each
    client with a seeded workbench tenant.  The defaults (one class,
    one tenant) leave every script at priority 0 / tenant 0 and the
    query stream byte-identical to untagged workloads.
    """
    if not profile.terms and not profile.doc_ids:
        raise ValueError("store profile is empty; nothing to query")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    bad = sorted(set(mix) - set(DEFAULT_MIX))
    if bad:
        raise ValueError(f"unknown query kinds in mix: {bad}")
    kinds = sorted(mix)
    weights = np.array([mix[k] for k in kinds], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError(f"query mix has no mass: {mix}")
    cum = np.cumsum(weights / weights.sum())
    priorities = _client_priorities(
        n_clients, seed, priority_classes, priority_weights
    )
    tenants = client_tenants(n_clients, seed, n_tenants)
    rng = np.random.default_rng(seed)
    pool = [
        _make_query(rng, profile, kinds, cum) for _ in range(hot_pool)
    ]
    scripts: list[ClientScript] = []
    for c in range(n_clients):
        queries: list[Query] = []
        think: list[float] = []
        for _ in range(queries_per_client):
            if pool and rng.random() < hot_fraction:
                q = pool[int(rng.integers(len(pool)))]
            else:
                q = _make_query(rng, profile, kinds, cum)
            queries.append(q)
            think.append(float(rng.exponential(mean_think_s)))
        scripts.append(
            ClientScript(
                client=c,
                queries=tuple(queries),
                think_s=tuple(think),
                priority=priorities[c],
                tenant=tenants[c],
            )
        )
    return scripts


#: default dashboard poll mix over the window query kinds (sums to 1)
DASHBOARD_MIX: dict[str, float] = {
    "facet_counts": 0.45,
    "window_terms": 0.35,
    "emerging": 0.20,
}


def generate_dashboard_workload(
    profile: StoreProfile,
    n_clients: int = 12,
    polls_per_client: int = 10,
    seed: int = 0,
    window_fraction: float = 0.25,
    mean_poll_s: float = 0.02,
    search_fraction: float = 0.25,
    source_fraction: float = 0.25,
    n_terms: int = 8,
    mix: dict[str, float] | None = None,
    priority_classes: tuple[int, ...] = (0,),
    priority_weights: tuple[float, ...] | None = None,
    n_tenants: int = 1,
) -> list[ClientScript]:
    """Generate the dashboard workload class over a *stamped* store.

    Many clients poll sliding-window queries at high rate: each client
    owns a window of ``window_fraction`` of the store's stamp range at
    a seeded phase offset, and every poll slides it forward so the last
    poll's window ends at the range's upper bound -- the "live
    dashboard tailing the feed" shape.  Polls draw their kind from
    ``mix`` (over ``facet_counts`` / ``window_terms`` / ``emerging``),
    a ``source_fraction`` of them restrict to one seeded source
    region, and a ``search_fraction`` of polls interleave classic
    search-mix traffic so dashboards contend with interactive
    analysis.  Think times are exponential with mean ``mean_poll_s``
    (high-rate polling).  Fully deterministic in ``(profile, seed,
    knobs)``; raises ``ValueError`` on unstamped profiles.
    """
    if profile.facet_range is None or profile.n_sources < 1:
        raise ValueError(
            "store profile is unstamped: dashboard workloads need a "
            "facet range and source count (build the store from a "
            "stamped corpus)"
        )
    if not 0.0 < window_fraction <= 1.0:
        raise ValueError(
            f"window_fraction must be in (0, 1], got {window_fraction}"
        )
    if not 0.0 <= search_fraction < 1.0:
        raise ValueError(
            f"search_fraction must be in [0, 1), got {search_fraction}"
        )
    if not 0.0 <= source_fraction <= 1.0:
        raise ValueError(
            f"source_fraction must be in [0, 1], got {source_fraction}"
        )
    mix = dict(DASHBOARD_MIX if mix is None else mix)
    bad = sorted(set(mix) - set(DASHBOARD_MIX))
    if bad:
        raise ValueError(f"unknown dashboard query kinds in mix: {bad}")
    kinds = sorted(mix)
    weights = np.array([mix[k] for k in kinds], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError(f"dashboard mix has no mass: {mix}")
    cum = np.cumsum(weights / weights.sum())
    search_kinds = sorted(DEFAULT_MIX)
    search_weights = np.array(
        [DEFAULT_MIX[k] for k in search_kinds], dtype=np.float64
    )
    search_cum = np.cumsum(search_weights / search_weights.sum())
    priorities = _client_priorities(
        n_clients, seed, priority_classes, priority_weights
    )
    tenants = client_tenants(n_clients, seed, n_tenants)
    lo, hi = profile.facet_range
    span = max(hi - lo, 1e-9)
    window = span * window_fraction
    rng = np.random.default_rng(seed)
    scripts: list[ClientScript] = []
    for c in range(n_clients):
        # each client's window starts at a seeded phase and slides so
        # its final poll ends exactly at the stamp range's upper bound
        phase = float(rng.random()) * (span - window)
        t1_first = lo + phase + window
        slide = (hi - t1_first) / max(1, polls_per_client - 1)
        queries: list[Query] = []
        think: list[float] = []
        for i in range(polls_per_client):
            if search_fraction and rng.random() < search_fraction:
                q = _make_query(rng, profile, search_kinds, search_cum)
            else:
                kind = kinds[
                    int(np.searchsorted(cum, rng.random(), side="right"))
                ]
                t1 = t1_first + i * slide
                source = -1
                if source_fraction and rng.random() < source_fraction:
                    source = int(rng.integers(profile.n_sources))
                q = Query(
                    kind=kind,
                    n_terms=n_terms,
                    t0=t1 - window,
                    t1=t1,
                    source=source,
                )
            queries.append(q)
            think.append(float(rng.exponential(mean_poll_s)))
        scripts.append(
            ClientScript(
                client=c,
                queries=tuple(queries),
                think_s=tuple(think),
                priority=priorities[c],
                tenant=tenants[c],
            )
        )
    return scripts


def generate_zipf_workload(
    profile: StoreProfile,
    n_clients: int = 100,
    queries_per_client: int = 4,
    seed: int = 0,
    mix: dict[str, float] | None = None,
    pool_size: int = 64,
    zipf_s: float = 1.3,
    mean_think_s: float = 0.2,
    priority_classes: tuple[int, ...] = (0, 1, 2),
    priority_weights: tuple[float, ...] | None = (0.2, 0.5, 0.3),
    n_tenants: int = 1,
) -> list[ClientScript]:
    """Generate a Zipf hot-spot workload (the scaling-study shape).

    Every query is drawn from a fixed pool of ``pool_size`` distinct
    queries with truncated-Zipf(``zipf_s``) popularity: a handful of
    head queries dominate (cache- and replica-contention fodder) with
    a long tail of rare ones.  Clients are tagged with seeded
    priority classes for the shedding study.  Fully deterministic in
    ``(profile, seed, knobs)`` like :func:`generate_workload`.
    """
    if not profile.terms and not profile.doc_ids:
        raise ValueError("store profile is empty; nothing to query")
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    if zipf_s <= 1.0:
        raise ValueError(f"zipf_s must be > 1, got {zipf_s}")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    bad = sorted(set(mix) - set(DEFAULT_MIX))
    if bad:
        raise ValueError(f"unknown query kinds in mix: {bad}")
    kinds = sorted(mix)
    weights = np.array([mix[k] for k in kinds], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError(f"query mix has no mass: {mix}")
    cum = np.cumsum(weights / weights.sum())
    priorities = _client_priorities(
        n_clients, seed, priority_classes, priority_weights
    )
    tenants = client_tenants(n_clients, seed, n_tenants)
    rng = np.random.default_rng(seed)
    pool = [
        _make_query(rng, profile, kinds, cum) for _ in range(pool_size)
    ]
    scripts: list[ClientScript] = []
    for c in range(n_clients):
        queries: list[Query] = []
        think: list[float] = []
        for _ in range(queries_per_client):
            # rank-1 is the hottest query; truncate the unbounded
            # Zipf draw onto the pool's tail bucket
            rank = min(int(rng.zipf(zipf_s)), pool_size)
            queries.append(pool[rank - 1])
            think.append(float(rng.exponential(mean_think_s)))
        scripts.append(
            ClientScript(
                client=c,
                queries=tuple(queries),
                think_s=tuple(think),
                priority=priorities[c],
                tenant=tenants[c],
            )
        )
    return scripts
