"""Sharded on-disk serving of pipeline outputs.

``repro.serve`` turns an :class:`~repro.engine.results.EngineResult`
into a servable search/analytics service: :mod:`~repro.serve.store`
writes a versioned sharded container format, :mod:`~repro.serve.query`
executes per-shard query operators with the exact scoring kernels of
:mod:`repro.analysis.session`, :mod:`~repro.serve.broker` fans queries
out over shard-server ranks on the deterministic runtime with caching,
admission control and fault degradation, :mod:`~repro.serve.replica`
places R consistent-hashed replicas of every shard,
:mod:`~repro.serve.router` serves through a router-fronted broker tier
with replica failover, hedged requests and priority load-shedding, and
:mod:`~repro.serve.workload` generates seeded closed-loop workloads
(uniform-hot-pool and Zipf hot-spot) for the ``serve-bench`` harness.
"""

from repro.serve.broker import BrokerConfig, ServeReport, query_store, serve
from repro.serve.query import Query, ShardStore, canonical_response
from repro.serve.replica import ReplicaHealth, ReplicaMap
from repro.serve.router import (
    RouterConfig,
    ShedResponse,
    TierReport,
    broker_of_client,
    serve_replicated,
)
from repro.serve.store import (
    DeltaInfo,
    ShardFormatError,
    StoreManifest,
    build_shards,
    current_generation,
    load_manifest,
    load_manifest_generation,
    verify_store,
)
from repro.serve.workload import (
    ClientScript,
    generate_workload,
    generate_zipf_workload,
    store_profile,
)

__all__ = [
    "BrokerConfig",
    "ClientScript",
    "DeltaInfo",
    "Query",
    "ReplicaHealth",
    "ReplicaMap",
    "RouterConfig",
    "ServeReport",
    "ShardFormatError",
    "ShardStore",
    "ShedResponse",
    "StoreManifest",
    "TierReport",
    "broker_of_client",
    "build_shards",
    "canonical_response",
    "current_generation",
    "generate_workload",
    "generate_zipf_workload",
    "load_manifest",
    "load_manifest_generation",
    "query_store",
    "serve",
    "serve_replicated",
    "store_profile",
    "verify_store",
]
