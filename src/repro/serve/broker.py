"""Query broker over shard-server ranks on the deterministic runtime.

Topology: ``nprocs = nshards + 1`` SPMD ranks.  Rank 0 is the broker;
rank ``r >= 1`` serves shard ``r - 1`` from its on-disk container.  The
broker runs a closed-loop discrete-event simulation of the client
scripts: queries arrive in (virtual arrival time, client) order, pass
bounded-in-flight admission control and an LRU result cache, then fan
out to the live shard ranks; per-shard candidate lists merge with the
same (score, global row) tie-breaking a global stable argsort applies,
so the merged answer is bit-identical to the single-result
:class:`~repro.analysis.session.AnalysisSession` path at every shard
count.

Degradation policy: a per-query shard timeout bounds each fan-out
round.  :class:`~repro.runtime.errors.RankFailedError` (a shard rank
crashed) permanently removes the dead ranks from the live set;
:class:`~repro.runtime.errors.CommTimeoutError` (alive but silent)
retries the round once, then drops the unresponsive shards for this
query.  Either way the query *answers* -- with ``"partial": true`` and
the missing shards listed -- instead of failing, and the response is
excluded from the cache.  Every layer feeds
:mod:`repro.runtime.metrics` (``serve.queries``,
``serve.cache.{hit,miss,evict}``, ``serve.rejected``,
``serve.degraded``, ``serve.latency``, ``serve.shard.bytes_scanned``).

Responses carry no timing fields; latencies live in the
:class:`ServeReport`.  That is what makes serialized responses the
byte-compare oracle for the determinism tests: identical across shard
layouts and scheduler modes even though latencies differ per layout.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.session import pseudo_signature, top_positive_terms
from repro.index.termindex import icf_weights
from repro.runtime.cluster import Cluster, MachineSpec
from repro.runtime.errors import CommTimeoutError, RankFailedError
from repro.serve.query import (
    Query,
    ShardStore,
    hits_payload,
    merge_asc,
    merge_desc,
)
from repro.serve.store import Container, ServeModel, load_manifest, load_model
from repro.serve.workload import ClientScript

TAG_REQ = 101
TAG_RESP = 102

#: modelled broker-side op costs (abstract cpu ops)
_DISPATCH_OPS = 1_000
_CACHE_HIT_OPS = 200
_REJECT_OPS = 50


@dataclass(frozen=True)
class BrokerConfig:
    """Serving-policy knobs of one broker session."""

    #: virtual seconds a fan-out round waits on silent shards
    shard_timeout_s: float = 5.0
    #: accepted-but-unfinished queries admitted before rejecting
    max_inflight: int = 8
    #: LRU result-cache capacity (entries); 0 disables caching
    cache_capacity: int = 128
    #: resend rounds after a CommTimeoutError before degrading
    retries: int = 1


@dataclass
class ServeReport:
    """Outcome of one broker session over a workload."""

    responses: list[dict]
    latencies: list[float]
    rejected: list[dict]
    failed_ranks: list[int]
    makespan: float
    metrics: dict = field(repr=False, default_factory=dict)

    @property
    def served(self) -> int:
        return len(self.responses)

    @property
    def throughput(self) -> float:
        """Served queries per virtual second."""
        return self.served / self.makespan if self.makespan > 0 else 0.0

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.responses if r["response"].get("partial"))

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.served if self.served else 0.0

    @property
    def cache_hit_rate(self) -> float:
        hits = sum(1 for r in self.responses if r.get("cached"))
        return hits / self.served if self.served else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of served-query virtual latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = max(0, int(np.ceil(pct / 100.0 * len(ordered))) - 1)
        return ordered[idx]


# ----------------------------------------------------------------------
# shard-server rank
# ----------------------------------------------------------------------
def _shard_main(ctx, store_dir: str) -> int:
    """Serve one shard's operators until the broker says stop."""
    manifest = load_manifest(store_dir)
    model = load_model(store_dir)
    shard_idx = ctx.rank - 1
    info = manifest.shards[shard_idx]
    shard = ShardStore(
        Container(os.path.join(store_dir, info.file)), model
    )
    bytes_scanned = ctx.metrics.counter(
        "serve.shard.bytes_scanned", ("shard",)
    )
    skey = (str(shard_idx),)
    served = 0
    while True:
        msg = ctx.comm.recv(0, tag=TAG_REQ)
        if msg[0] == "stop":
            return served
        qid, op, params = msg
        if op == "search":
            cands, scanned = shard.op_search(
                params["term_rows"], params["icf"], params["k"]
            )
            ctx.charge_cpu(scanned // 16 * 4)
            payload = cands
        elif op == "matvec":
            cands, scanned = shard.op_matvec(
                params["unit"], params["k"], params.get("skip_row", -1)
            )
            ctx.charge_flops(2 * shard.n_docs * params["unit"].shape[0])
            payload = cands
        elif op == "fetch_unit":
            unit, row, scanned = shard.op_fetch_unit(params["doc_id"])
            payload = (unit, row)
        elif op == "cluster":
            size, cands, scanned = shard.op_cluster(
                params["cluster"], params["n_docs"]
            )
            ctx.charge_flops(3 * size * shard.model.centroids.shape[1])
            payload = (size, cands)
        elif op == "region":
            rows, block, scanned = shard.op_region(
                params["x"], params["y"], params["radius"]
            )
            ctx.charge_cpu(2 * shard.n_docs)
            payload = (rows, block)
        else:
            raise ValueError(f"unknown shard op {op!r}")
        ctx.charge_io(scanned, concurrent_readers=1)
        bytes_scanned.inc(ctx.rank, float(scanned), key=skey)
        ctx.comm.send(0, (qid, shard_idx, payload), tag=TAG_RESP)
        served += 1


# ----------------------------------------------------------------------
# broker rank
# ----------------------------------------------------------------------
class _Broker:
    def __init__(self, ctx, model: ServeModel, config: BrokerConfig):
        self.ctx = ctx
        self.model = model
        self.config = config
        self.n_docs = model.n_docs
        #: live shard ranks (1-based); shrinks on RankFailedError
        self.live = list(range(1, ctx.nprocs))
        self.qid = 0
        self.icf = icf_weights(model.term_df, model.n_docs)
        m = ctx.metrics
        self.c_queries = m.counter("serve.queries", ("kind",))
        self.c_hit = m.counter("serve.cache.hit")
        self.c_miss = m.counter("serve.cache.miss")
        self.c_evict = m.counter("serve.cache.evict")
        self.c_rejected = m.counter("serve.rejected")
        self.c_degraded = m.counter("serve.degraded")
        self.h_latency = m.histogram("serve.latency", label_names=("kind",))
        self.cache: OrderedDict[tuple, dict] = OrderedDict()

    # -- fan-out -------------------------------------------------------
    def _fanout(
        self, targets: list[int], op: str, params: dict
    ) -> tuple[dict[int, object], list[int]]:
        """One request round over ``targets``; returns (responses by
        shard index, shards dropped this query)."""
        ctx, cfg = self.ctx, self.config
        self.qid += 1
        qid = self.qid
        for r in targets:
            ctx.comm.send(r, (qid, op, params), tag=TAG_REQ)
        pending = set(targets)
        got: dict[int, object] = {}
        resends = 0
        while pending:
            try:
                src, msg = ctx.comm.recv_any(
                    sources=sorted(pending),
                    tag=TAG_RESP,
                    timeout=cfg.shard_timeout_s,
                )
            except RankFailedError as exc:
                dead = [r for r in exc.failed if r in pending]
                for r in dead:
                    pending.discard(r)
                    if r in self.live:
                        self.live.remove(r)
                continue
            except CommTimeoutError:
                if resends < cfg.retries:
                    resends += 1
                    for r in sorted(pending):
                        ctx.comm.send(r, (qid, op, params), tag=TAG_REQ)
                    continue
                break
            rqid, shard_idx, payload = msg
            if rqid != qid:
                continue  # stale answer from a retried round
            got[shard_idx] = payload
            pending.discard(src)
        dropped = sorted(r - 1 for r in pending)
        return got, dropped

    def _merged_response(
        self,
        kind: str,
        got: dict[int, object],
        dropped: list[int],
        k: int,
        descending: bool = True,
    ) -> dict:
        per_shard = [got[s] for s in sorted(got)]
        merge = merge_desc if descending else merge_asc
        cands = merge(per_shard, k)
        self.ctx.charge_cpu(sum(len(p) for p in per_shard) + _DISPATCH_OPS)
        resp = {"kind": kind, "hits": hits_payload(cands)}
        self._flag(resp, dropped)
        return resp

    def _flag(self, resp: dict, dropped: list[int]) -> None:
        """Mark a response that is missing any shard's documents.

        Permanently-dead shards count on every later query too: an
        answer that cannot see part of the collection stays flagged
        partial even though its fan-out round had no new failures.
        """
        dead = [
            r - 1
            for r in range(1, self.ctx.nprocs)
            if r not in self.live
        ]
        missing = sorted(set(dropped) | set(dead))
        resp["partial"] = bool(missing)
        resp["failed_shards"] = missing

    # -- operators -----------------------------------------------------
    def execute(self, query: Query) -> dict:
        """Fan one accepted, uncached query out and merge the answer."""
        kind = query.kind
        if kind == "search":
            return self._exec_search(query)
        if kind == "query":
            return self._exec_query(query)
        if kind == "similar":
            return self._exec_similar(query)
        if kind == "cluster":
            return self._exec_cluster(query)
        return self._exec_region(query)

    def _exec_search(self, query: Query) -> dict:
        term_rows = [
            self.model.term_row[t]
            for t in query.terms
            if t in self.model.term_row
        ]
        if not term_rows or not self.model.has_postings:
            return {
                "kind": "search",
                "hits": [],
                "partial": False,
                "failed_shards": [],
            }
        k = min(max(1, query.k), self.n_docs)
        got, dropped = self._fanout(
            self.live,
            "search",
            {"term_rows": term_rows, "icf": self.icf, "k": k},
        )
        return self._merged_response("search", got, dropped, k)

    def _exec_query(self, query: Query) -> dict:
        rows = [
            self.model.term_row[t]
            for t in query.terms
            if t in self.model.term_row
        ]
        unit = pseudo_signature(self.model.association, rows)
        if unit is None:
            return {
                "kind": "query",
                "hits": [],
                "partial": False,
                "failed_shards": [],
            }
        k = min(max(1, query.k), self.n_docs)
        got, dropped = self._fanout(
            self.live, "matvec", {"unit": unit, "k": k}
        )
        return self._merged_response("query", got, dropped, k)

    def _exec_similar(self, query: Query) -> dict:
        manifest = self.model.manifest
        owner = None
        for i, s in enumerate(manifest.shards):
            if s.n_docs and s.doc_lo <= query.doc_id <= s.doc_hi:
                owner = i
                break
        if owner is None:
            return {
                "kind": "similar",
                "hits": [],
                "error": f"unknown doc_id {query.doc_id}",
                "partial": False,
                "failed_shards": [],
            }
        owner_rank = owner + 1
        if owner_rank not in self.live:
            # the only shard that could anchor this query is gone
            resp = {"kind": "similar", "hits": []}
            self._flag(resp, [owner])
            return resp
        got, dropped = self._fanout(
            [owner_rank], "fetch_unit", {"doc_id": query.doc_id}
        )
        fetched = got.get(owner)
        if fetched is None:
            resp = {"kind": "similar", "hits": []}
            self._flag(resp, dropped or [owner])
            return resp
        if fetched[0] is None:
            return {
                "kind": "similar",
                "hits": [],
                "error": f"unknown doc_id {query.doc_id}",
                "partial": False,
                "failed_shards": [],
            }
        unit_row, global_row = fetched[0], fetched[1]
        k = min(max(1, query.k), self.n_docs - 1)
        got, dropped2 = self._fanout(
            self.live,
            "matvec",
            {"unit": unit_row, "k": k, "skip_row": global_row},
        )
        return self._merged_response(
            "similar", got, sorted(set(dropped) | set(dropped2)), k
        )

    def _exec_cluster(self, query: Query) -> dict:
        kmax = self.model.centroids.shape[0]
        if not 0 <= query.cluster < kmax:
            return {
                "kind": "cluster",
                "error": (
                    f"cluster {query.cluster} out of range [0, {kmax})"
                ),
                "partial": False,
                "failed_shards": [],
            }
        centroid = self.model.centroids[query.cluster]
        got, dropped = self._fanout(
            self.live,
            "cluster",
            {"cluster": query.cluster, "n_docs": query.n_docs},
        )
        sizes = {s: got[s][0] for s in got}
        per_shard = [got[s][1] for s in sorted(got)]
        size = int(sum(sizes.values()))
        take = min(query.n_docs, size)
        reps = merge_asc(per_shard, take)
        self.ctx.charge_cpu(
            sum(len(p) for p in per_shard) + _DISPATCH_OPS
        )
        resp = {
            "kind": "cluster",
            "cluster": query.cluster,
            "size": size,
            "top_terms": top_positive_terms(
                centroid, self.model.topic_terms, query.n_terms
            ),
            "representative_docs": [c.doc_id for c in reps],
            "centroid_norm": float(np.linalg.norm(centroid)),
        }
        self._flag(resp, dropped)
        return resp

    def _exec_region(self, query: Query) -> dict:
        got, dropped = self._fanout(
            self.live,
            "region",
            {"x": query.x, "y": query.y, "radius": query.radius},
        )
        blocks = [got[s][1] for s in sorted(got) if got[s][0].size]
        size = int(sum(got[s][0].size for s in got))
        if size == 0:
            resp = {"kind": "region", "size": 0, "terms": []}
            self._flag(resp, dropped)
            return resp
        # concatenating the shard blocks in shard (= global row) order
        # rebuilds the exact contiguous array the reference session
        # reduces, so the mean is bit-identical to the unsharded path
        mean_sig = np.concatenate(blocks, axis=0).mean(axis=0)
        self.ctx.charge_flops(size * mean_sig.shape[0] + _DISPATCH_OPS)
        resp = {
            "kind": "region",
            "size": size,
            "terms": top_positive_terms(
                mean_sig, self.model.topic_terms, query.n_terms
            ),
        }
        self._flag(resp, dropped)
        return resp

    # -- closed-loop event pump ----------------------------------------
    def pump(self, scripts: list[ClientScript]) -> ServeReport:
        ctx, cfg = self.ctx, self.config
        heap: list[tuple[float, int, int]] = []
        for c, script in enumerate(scripts):
            if script.queries:
                heapq.heappush(heap, (script.think_s[0], c, 0))
        responses: list[dict] = []
        latencies: list[float] = []
        rejected: list[dict] = []
        finishes: list[float] = []  # ascending: server is sequential

        def _next(client: int, seq: int, now: float) -> None:
            script = scripts[client]
            if seq + 1 < len(script.queries):
                heapq.heappush(
                    heap, (now + script.think_s[seq + 1], client, seq + 1)
                )

        while heap:
            arrival, client, seq = heapq.heappop(heap)
            query = scripts[client].queries[seq]
            self.c_queries.inc(0, key=(query.kind,))
            # admission control: accepted-but-unfinished depth at arrival
            depth = len(finishes) - bisect_right(finishes, arrival)
            if depth >= cfg.max_inflight:
                self.c_rejected.inc(0)
                ctx.charge_cpu(_REJECT_OPS)
                rejected.append(
                    {"client": client, "seq": seq, "kind": query.kind}
                )
                _next(client, seq, arrival)
                continue
            if ctx.now < arrival:
                ctx.charge(arrival - ctx.now)
            key = query.key()
            cached = cfg.cache_capacity > 0 and key in self.cache
            if cached:
                self.c_hit.inc(0)
                self.cache.move_to_end(key)
                ctx.charge_cpu(_CACHE_HIT_OPS)
                resp = self.cache[key]
            else:
                self.c_miss.inc(0)
                resp = self.execute(query)
                if resp.get("partial"):
                    self.c_degraded.inc(0)
                elif cfg.cache_capacity > 0:
                    self.cache[key] = resp
                    if len(self.cache) > cfg.cache_capacity:
                        self.cache.popitem(last=False)
                        self.c_evict.inc(0)
            finish = ctx.now
            latency = finish - arrival
            self.h_latency.observe(0, latency, key=(query.kind,))
            responses.append(
                {
                    "client": client,
                    "seq": seq,
                    "kind": query.kind,
                    "cached": cached,
                    "response": resp,
                }
            )
            latencies.append(latency)
            finishes.append(finish)
            _next(client, seq, finish)

        for r in self.live:
            ctx.comm.send(r, ("stop",), tag=TAG_REQ)
        return ServeReport(
            responses=responses,
            latencies=latencies,
            rejected=rejected,
            failed_ranks=sorted(
                r for r in range(1, ctx.nprocs) if r not in self.live
            ),
            makespan=ctx.now,
        )


def _serve_main(ctx, store_dir: str, scripts, config: BrokerConfig):
    if ctx.rank == 0:
        model = load_model(store_dir)
        return _Broker(ctx, model, config).pump(list(scripts))
    return _shard_main(ctx, store_dir)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def serve(
    store_dir: str | os.PathLike,
    scripts: list[ClientScript],
    config: Optional[BrokerConfig] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
) -> ServeReport:
    """Run one broker session over a sharded store.

    Spawns ``nshards + 1`` ranks on the deterministic runtime, serves
    every scripted query, and returns the broker's
    :class:`ServeReport` with the run's metrics snapshot attached.
    Under a fault plan the session degrades (partial responses) rather
    than failing: the cluster runs with ``raise_on_failure=False``.
    """
    store_dir = str(store_dir)
    manifest = load_manifest(store_dir)
    config = config if config is not None else BrokerConfig()
    cluster = Cluster(
        manifest.nshards + 1, machine=machine, faults=faults
    )
    result = cluster.run(
        _serve_main,
        store_dir,
        tuple(scripts),
        config,
        raise_on_failure=False,
    )
    report = result.rank_results[0]
    if report is None:
        raise RankFailedError(
            result.failed_ranks, "broker rank crashed"
        )
    report.metrics = result.metrics.snapshot()
    report.failed_ranks = sorted(
        set(report.failed_ranks) | set(result.failed_ranks)
    )
    return report


def query_store(
    store_dir: str | os.PathLike,
    query: Query,
    config: Optional[BrokerConfig] = None,
    machine: Optional[MachineSpec] = None,
) -> dict:
    """Answer one query against a store (the ``serve-query`` path)."""
    script = ClientScript(client=0, queries=(query,), think_s=(0.0,))
    report = serve(store_dir, [script], config=config, machine=machine)
    return report.responses[0]["response"]
