"""Query broker over shard-server ranks on the deterministic runtime.

Topology: ``nprocs = nshards + 1`` SPMD ranks (plus one optional
ingest-driver rank, see below).  Rank 0 is the broker; rank ``r`` with
``1 <= r <= nshards`` serves shard ``r - 1`` from its on-disk
containers.  The broker runs a closed-loop discrete-event simulation of
the client scripts: queries arrive in (virtual arrival time, client)
order, pass bounded-in-flight admission control and an LRU result
cache, then fan out to the live shard ranks; per-shard candidate lists
merge with the same (score, global row) tie-breaking a global stable
argsort applies, so the merged answer is bit-identical to the
single-result :class:`~repro.analysis.session.AnalysisSession` path at
every shard count.

Generational serving (live ingest): when the store is generational --
or an ingest plan runs alongside in an extra rank ``nshards + 1`` --
the broker polls the store's ``CURRENT`` pointer between queries and
hot-reloads the newest manifest (a charged, bounded amount of broker
work; zero downtime).  Every accepted query is pinned to the epoch the
broker saw at its arrival: the fan-out messages carry that epoch, each
shard rank resolves exactly that generation's segment list (its base
shard plus the delta segments it owns), and the response envelope
records the generation -- one query never mixes generations.  The
per-epoch icf weights are recomputed on reload because they depend on
the collection size.  Static stores keep the PR-4 three-field wire
messages, so their virtual timings are unchanged.

Degradation policy: a per-query shard timeout bounds each fan-out
round.  :class:`~repro.runtime.errors.RankFailedError` (a shard rank
crashed) permanently removes the dead ranks from the live set;
:class:`~repro.runtime.errors.CommTimeoutError` (alive but silent)
retries the round once, then drops the unresponsive shards for this
query.  Either way the query *answers* -- with ``"partial": true`` and
the missing shards listed -- instead of failing, and the response is
excluded from the cache.  Every layer feeds
:mod:`repro.runtime.metrics` (``serve.queries``,
``serve.cache.{hit,miss,evict}``, ``serve.rejected``,
``serve.degraded``, ``serve.latency``, ``serve.shard.bytes_scanned``,
``ingest.broker.reloads`` in generational mode, and the
``facets.*`` families on stamped stores).

Window analytics (stamped stores): ``facet_counts`` fans out exact
per-source int64 counts over ``[t0, t1)``; ``window_terms`` ranks the
model's major terms by exact int64 tf partial sums inside the window;
``emerging`` compares the window against the preceding window of equal
width under the epoch-pinned frozen model.  All three merge integer
partials in sorted shard order (associative sums -- any shard layout
lands on identical bytes) and rank through the canonical
``(-score, row)`` order on the integers directly.  Unstamped stores
answer facet queries with a typed ``"error"`` response, never a
fan-out.

Responses carry no timing fields; latencies live in the
:class:`ServeReport`.  That is what makes serialized responses the
byte-compare oracle for the determinism tests: identical across shard
layouts and scheduler modes even though latencies differ per layout.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.session import pseudo_signature, top_positive_terms
from repro.facets.windows import emerging_scores
from repro.index.termindex import (
    icf_weights,
    set_term_cooccurrence,
    set_term_tf,
)
from repro.runtime.cluster import Cluster, MachineSpec
from repro.runtime.errors import CommTimeoutError, RankFailedError
from repro.serve.query import (
    Query,
    ShardStore,
    hits_payload,
    merge_asc,
    merge_desc,
    topk_int_score_row,
)
from repro.serve.store import (
    CURRENT_FILE,
    Container,
    StoreManifest,
    current_generation,
    load_manifest,
    load_manifest_generation,
    load_model,
)
from repro.serve.workload import ClientScript

TAG_REQ = 101
TAG_RESP = 102

#: modelled broker-side op costs (abstract cpu ops)
_DISPATCH_OPS = 1_000
_CACHE_HIT_OPS = 200
_REJECT_OPS = 50
_RELOAD_OPS = 200


@dataclass(frozen=True)
class BrokerConfig:
    """Serving-policy knobs of one broker session."""

    #: virtual seconds a fan-out round waits on silent shards
    shard_timeout_s: float = 5.0
    #: accepted-but-unfinished queries admitted before rejecting
    max_inflight: int = 8
    #: LRU result-cache capacity (entries); 0 disables caching
    cache_capacity: int = 128
    #: resend rounds after a CommTimeoutError before degrading
    retries: int = 1
    #: use block-max top-k pruning for search ops (answers are
    #: bit-identical either way; legacy stores fall back regardless)
    pruned_search: bool = True
    #: max queued same-arrival ``search`` queries drained into one
    #: fan-out message; 1 preserves the one-query-per-round protocol
    batch_max_queries: int = 1


@dataclass
class ServeReport:
    """Outcome of one broker session over a workload."""

    responses: list[dict]
    latencies: list[float]
    rejected: list[dict]
    failed_ranks: list[int]
    makespan: float
    metrics: dict = field(repr=False, default_factory=dict)
    #: generation -> {"queries", "first_virtual_s"} of served queries
    generations: dict = field(default_factory=dict)
    #: ingest-driver outcome when an ingest plan ran alongside
    ingest: Optional[dict] = None

    @property
    def served(self) -> int:
        return len(self.responses)

    @property
    def throughput(self) -> float:
        """Served queries per virtual second."""
        return self.served / self.makespan if self.makespan > 0 else 0.0

    @property
    def degraded(self) -> int:
        return sum(1 for r in self.responses if r["response"].get("partial"))

    @property
    def degraded_rate(self) -> float:
        return self.degraded / self.served if self.served else 0.0

    @property
    def cache_hit_rate(self) -> float:
        hits = sum(1 for r in self.responses if r.get("cached"))
        return hits / self.served if self.served else 0.0

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of served-query virtual latency."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        idx = max(0, int(np.ceil(pct / 100.0 * len(ordered))) - 1)
        return ordered[idx]


# ----------------------------------------------------------------------
# shard-server rank
# ----------------------------------------------------------------------
def execute_shard_op(
    ctx, model, segs: list[ShardStore], op: str, params: dict
) -> tuple[object, int, int]:
    """Run one shard operator over a segment list.

    Returns ``(payload, bytes_scanned, blocks_skipped)``; charges the
    per-op cpu/flops cost but leaves the io charge and metrics to the
    caller (whose loop structure differs between the single-shard and
    the replica worker).  Shared by :class:`_ShardWorker` and the
    replica worker in :mod:`repro.serve.router` so replicas of a shard
    are bit-identical by construction.
    """
    scanned = 0
    skipped = 0
    if op == "search":
        cands: list = []
        for seg in segs:
            c, s, sk = seg.op_search(
                params["term_rows"],
                params["icf"],
                params["k"],
                pruned=params.get("pruned", True),
                restrict_rows=params.get("restrict_rows"),
            )
            cands.extend(c)
            scanned += s
            skipped += sk
        ctx.charge_cpu(scanned // 16 * 4)
        payload: object = cands
    elif op == "search_batch":
        # one message, N queries: every member scores over the same
        # segment list, sharing the lazily-decoded postings blocks
        batch_payload: list[list] = []
        for term_rows, k in params["requests"]:
            cands = []
            for seg in segs:
                c, s, sk = seg.op_search(
                    term_rows,
                    params["icf"],
                    k,
                    pruned=params.get("pruned", True),
                )
                cands.extend(c)
                scanned += s
                skipped += sk
            batch_payload.append(cands)
        ctx.charge_cpu(scanned // 16 * 4)
        payload = batch_payload
    elif op == "matvec":
        cands = []
        n_docs = 0
        for seg in segs:
            c, s = seg.op_matvec(
                params["unit"],
                params["k"],
                params.get("skip_row", -1),
                restrict_rows=params.get("restrict_rows"),
            )
            cands.extend(c)
            scanned += s
            n_docs += seg.n_docs
        ctx.charge_flops(2 * n_docs * params["unit"].shape[0])
        payload = cands
    elif op == "set_tf":
        # exact int64 per-term tf totals over a result set's rows:
        # integer sums are associative, so the broker-side sum over
        # shard payloads is layout-independent bit for bit
        totals = np.zeros(model.term_df.shape[0], dtype=np.int64)
        for seg in segs:
            local = seg._local_restrict(params["rows"])
            if local.size:
                t, s = set_term_tf(seg.postings, local)
                totals += t
                scanned += s * 16
        ctx.charge_cpu(scanned // 16 * 2)
        payload = totals
    elif op == "set_cooc":
        m_sel = len(params["term_rows"])
        cooc = np.zeros((m_sel, m_sel), dtype=np.int64)
        for seg in segs:
            local = seg._local_restrict(params["rows"])
            if local.size:
                c2, s = set_term_cooccurrence(
                    seg.postings, local, params["term_rows"]
                )
                cooc += c2
                scanned += s * 16
        ctx.charge_cpu(scanned // 16 * 2 + m_sel * m_sel)
        payload = cooc
    elif op == "fetch_unit":
        payload = (None, -1)
        for seg in segs:
            unit, row, s = seg.op_fetch_unit(params["doc_id"])
            scanned += s
            if unit is not None and payload[0] is None:
                payload = (unit, row)
    elif op == "cluster":
        size = 0
        cands = []
        for seg in segs:
            sz, c, s = seg.op_cluster(
                params["cluster"], params["n_docs"]
            )
            size += sz
            cands.extend(c)
            scanned += s
        ctx.charge_flops(3 * size * model.centroids.shape[1])
        payload = (size, cands)
    elif op == "region":
        rows_parts: list[np.ndarray] = []
        block_parts: list[np.ndarray] = []
        n_docs = 0
        for seg in segs:
            rows, block, s = seg.op_region(
                params["x"], params["y"], params["radius"]
            )
            scanned += s
            n_docs += seg.n_docs
            if rows.size:
                rows_parts.append(rows)
                block_parts.append(block)
        ctx.charge_cpu(2 * n_docs)
        if rows_parts:
            payload = (
                np.concatenate(rows_parts),
                np.concatenate(block_parts, axis=0),
            )
        else:
            payload = (
                np.empty(0, dtype=np.int64),
                np.empty((0, model.centroids.shape[1])),
            )
    elif op == "facet_counts":
        # facet payloads carry their own scanned count so the broker
        # can account facet bytes separately (facets.bytes_scanned)
        counts = np.zeros(params["n_sources"], dtype=np.int64)
        for seg in segs:
            c, s = seg.op_facet_counts(
                params["t0"], params["t1"], params["n_sources"]
            )
            counts += c
            scanned += s
        ctx.charge_cpu(scanned // 8)
        payload = (counts, scanned)
    elif op == "window_tf":
        # exact int64 per-term tf totals over the window's rows (and
        # optionally the preceding window): like "set_tf", integer
        # sums make the broker-side merge layout-independent
        pairs = [(params["t0"], params["t1"])]
        if params.get("pair"):
            width = params["t1"] - params["t0"]
            pairs.insert(0, (params["t0"] - width, params["t0"]))
        window_payload = []
        for t0, t1 in pairs:
            totals = np.zeros(model.term_df.shape[0], dtype=np.int64)
            n_docs = 0
            for seg in segs:
                t, n, s = seg.op_window_tf(
                    t0, t1, params.get("source", -1)
                )
                totals += t
                n_docs += n
                scanned += s
            window_payload.append((totals, n_docs))
        ctx.charge_cpu(scanned // 16 * 2)
        payload = (window_payload, scanned)
    elif op == "window_restrict":
        rows_parts = []
        for seg in segs:
            rows, s = seg.op_window_restrict(
                params["rows"],
                params["t0"],
                params["t1"],
                params.get("source", -1),
            )
            scanned += s
            if rows.size:
                rows_parts.append(rows)
        ctx.charge_cpu(scanned // 8)
        payload = (
            np.concatenate(rows_parts)
            if rows_parts
            else np.empty(0, dtype=np.int64),
            scanned,
        )
    else:
        raise ValueError(f"unknown shard op {op!r}")
    return payload, scanned, skipped


class _ShardWorker:
    """One shard rank's serving loop over the generations it is asked
    about.

    Per epoch the rank serves a *segment list*: its base shard plus
    every delta segment whose ``owner`` it is.  Manifests and segment
    stores are cached across epochs (a generation's containers are
    immutable once published).  With a single segment -- every static
    store -- the per-op charge sequence and payloads are byte-identical
    to the PR-4 single-shard loop.
    """

    def __init__(self, ctx, store_dir: str):
        self.ctx = ctx
        self.store_dir = store_dir
        self.shard_idx = ctx.rank - 1
        self.model = load_model(store_dir)
        self._manifests: dict[int, StoreManifest] = {}
        self._segments: dict[int, list[ShardStore]] = {}
        self._stores: dict[str, ShardStore] = {}

    def _manifest(self, epoch: int) -> StoreManifest:
        m = self._manifests.get(epoch)
        if m is None:
            m = load_manifest_generation(self.store_dir, epoch)
            self._manifests[epoch] = m
        return m

    def _store(self, fname: str) -> ShardStore:
        s = self._stores.get(fname)
        if s is None:
            s = ShardStore(
                Container(os.path.join(self.store_dir, fname)), self.model
            )
            self._stores[fname] = s
        return s

    def segments(self, epoch: int) -> list[ShardStore]:
        segs = self._segments.get(epoch)
        if segs is None:
            m = self._manifest(epoch)
            files = [m.shards[self.shard_idx].file]
            files += [
                d.file for d in m.deltas if d.owner == self.shard_idx
            ]
            segs = [self._store(f) for f in files]
            self._segments[epoch] = segs
        return segs

    def run(self) -> int:
        """Serve operators until the broker says stop."""
        ctx = self.ctx
        bytes_scanned = ctx.metrics.counter(
            "serve.shard.bytes_scanned", ("shard",)
        )
        blocks_skipped = ctx.metrics.counter(
            "serve.shard.blocks_skipped", ("shard",)
        )
        skey = (str(self.shard_idx),)
        served = 0
        while True:
            msg = ctx.comm.recv(0, tag=TAG_REQ)
            if msg[0] == "stop":
                return served
            if len(msg) == 4:
                qid, epoch, op, params = msg
            else:
                qid, op, params = msg
                epoch = 0
            segs = self.segments(epoch)
            payload, scanned, skipped = execute_shard_op(
                ctx, self.model, segs, op, params
            )
            ctx.charge_io(scanned, concurrent_readers=1)
            bytes_scanned.inc(ctx.rank, float(scanned), key=skey)
            blocks_skipped.inc(ctx.rank, float(skipped), key=skey)
            ctx.comm.send(0, (qid, self.shard_idx, payload), tag=TAG_RESP)
            served += 1


def _shard_main(ctx, store_dir: str) -> int:
    """Serve one shard's operators until the broker says stop."""
    return _ShardWorker(ctx, store_dir).run()


# ----------------------------------------------------------------------
# broker rank
# ----------------------------------------------------------------------
class _Broker:
    def __init__(
        self,
        ctx,
        store_dir: str,
        config: BrokerConfig,
        generational: bool = False,
    ):
        self.ctx = ctx
        self.store_dir = store_dir
        self.config = config
        self.model = load_model(store_dir)
        manifest = self.model.manifest
        self.manifest = manifest
        self.nshards = manifest.nshards
        self.epoch = manifest.generation
        self.n_docs = manifest.n_docs
        self.generational = generational or os.path.exists(
            os.path.join(store_dir, CURRENT_FILE)
        )
        #: live shard indices (0-based); shrinks on RankFailedError
        self.live = list(range(self.nshards))
        #: this broker's metric slot (rank 0 in the single-broker tier)
        self.mrank = ctx.rank
        self.qid = 0
        self.icf = icf_weights(self.model.term_df, self.n_docs)
        m = ctx.metrics
        self.c_queries = m.counter("serve.queries", ("kind",))
        self.c_hit = m.counter("serve.cache.hit")
        self.c_miss = m.counter("serve.cache.miss")
        self.c_evict = m.counter("serve.cache.evict")
        self.c_rejected = m.counter("serve.rejected")
        self.c_degraded = m.counter("serve.degraded")
        self.h_latency = m.histogram("serve.latency", label_names=("kind",))
        # registered only in generational mode so static-serve metric
        # snapshots gain no empty ingest families
        self.c_reloads = (
            m.counter("ingest.broker.reloads") if self.generational else None
        )
        # likewise: facet families exist only on stamped stores, so an
        # unstamped session's metric snapshot is byte-identical to the
        # pre-facet output
        if manifest.facets is not None:
            self.c_facet_windows = m.counter("facets.windows", ("kind",))
            self.c_facet_bytes = m.counter("facets.bytes_scanned")
            self.c_facet_emerging = m.counter("facets.emerging_hits")
        else:
            self.c_facet_windows = None
            self.c_facet_bytes = None
            self.c_facet_emerging = None
        self.cache: OrderedDict[tuple, dict] = OrderedDict()
        self.gen_stats: dict[int, dict] = {}

    # -- hot reload ----------------------------------------------------
    def _maybe_reload(self) -> None:
        """Swap to the newest published generation between queries.

        Bounded broker work (one pointer read; on change, one manifest
        parse plus an icf recompute), charged as ``_RELOAD_OPS``.  The
        epoch set here pins every fan-out of the next query.
        """
        if not self.generational:
            return
        # sync point before the poll: lets the ingest rank (and any
        # other lower-clock rank) run first, so every publish stamped
        # at or before this query's arrival is really on disk
        self.ctx.sync()
        gen = current_generation(self.store_dir)
        # adopt the newest generation already published in virtual
        # time: a generation stamped later than this query's arrival
        # is not visible to it (walk back -- publishes are stamped in
        # ascending order, so the first hit is the right one)
        while gen > self.epoch:
            manifest = load_manifest_generation(self.store_dir, gen)
            if manifest.published_s > self.ctx.now:
                gen -= 1
                continue
            self.epoch = gen
            self.manifest = manifest
            self.n_docs = manifest.n_docs
            # icf depends on the collection size: per-epoch state
            self.icf = icf_weights(self.model.term_df, self.n_docs)
            self.ctx.charge_cpu(_RELOAD_OPS)
            self.c_reloads.inc(self.mrank)
            return

    # -- fan-out -------------------------------------------------------
    def _shard_rank(self, shard: int) -> int:
        """Rank serving ``shard`` (single-copy tier: rank = shard + 1)."""
        return shard + 1

    def _fanout(
        self, targets: list[int], op: str, params: dict
    ) -> tuple[dict[int, object], list[int]]:
        """One request round over ``targets`` (shard indices); returns
        (responses by shard index, shards dropped this query)."""
        ctx, cfg = self.ctx, self.config
        self.qid += 1
        qid = self.qid
        # static stores keep the PR-4 three-field messages (identical
        # wire sizes); generational fan-outs pin the query's epoch
        req = (
            (qid, self.epoch, op, params)
            if self.generational
            else (qid, op, params)
        )
        for s in targets:
            ctx.comm.send(self._shard_rank(s), req, tag=TAG_REQ)
        pending = set(targets)
        got: dict[int, object] = {}
        if not getattr(ctx.comm, "supports_recv_any", True):
            # mp backend: no recv_any, but mp runs are fault-free, so a
            # plain per-shard receive in sorted order is equivalent --
            # responses carry no timing fields and the merge iterates
            # shards in sorted order, so response bytes are unchanged.
            for s in sorted(pending):
                _rqid, shard_idx, payload = ctx.comm.recv(
                    self._shard_rank(s), tag=TAG_RESP
                )
                got[shard_idx] = payload
            return got, []
        resends = 0
        while pending:
            try:
                src, msg = ctx.comm.recv_any(
                    sources=sorted(self._shard_rank(s) for s in pending),
                    tag=TAG_RESP,
                    timeout=cfg.shard_timeout_s,
                )
            except RankFailedError as exc:
                dead = [r - 1 for r in exc.failed if r - 1 in pending]
                for s in dead:
                    pending.discard(s)
                    if s in self.live:
                        self.live.remove(s)
                continue
            except CommTimeoutError:
                if resends < cfg.retries:
                    resends += 1
                    for s in sorted(pending):
                        ctx.comm.send(
                            self._shard_rank(s), req, tag=TAG_REQ
                        )
                    continue
                break
            rqid, shard_idx, payload = msg
            if rqid != qid:
                continue  # stale answer from a retried round
            got[shard_idx] = payload
            pending.discard(shard_idx)
        dropped = sorted(pending)
        return got, dropped

    def _merged_response(
        self,
        kind: str,
        got: dict[int, object],
        dropped: list[int],
        k: int,
        descending: bool = True,
    ) -> dict:
        per_shard = [got[s] for s in sorted(got)]
        merge = merge_desc if descending else merge_asc
        cands = merge(per_shard, k)
        self.ctx.charge_cpu(sum(len(p) for p in per_shard) + _DISPATCH_OPS)
        resp = {"kind": kind, "hits": hits_payload(cands)}
        self._flag(resp, dropped)
        return resp

    def _flag(self, resp: dict, dropped: list[int]) -> None:
        """Mark a response that is missing any shard's documents.

        Permanently-dead shards count on every later query too: an
        answer that cannot see part of the collection stays flagged
        partial even though its fan-out round had no new failures.
        """
        dead = [s for s in range(self.nshards) if s not in self.live]
        missing = sorted(set(dropped) | set(dead))
        resp["partial"] = bool(missing)
        resp["failed_shards"] = missing

    # -- operators -----------------------------------------------------
    def execute(self, query: Query) -> dict:
        """Fan one accepted, uncached query out and merge the answer."""
        kind = query.kind
        if kind == "search":
            return self._exec_search(query)
        if kind == "query":
            return self._exec_query(query)
        if kind == "similar":
            return self._exec_similar(query)
        if kind == "cluster":
            return self._exec_cluster(query)
        if kind == "facet_counts":
            return self._exec_facet_counts(query)
        if kind == "window_terms":
            return self._exec_window_terms(query)
        if kind == "emerging":
            return self._exec_emerging(query)
        return self._exec_region(query)

    def _exec_search(self, query: Query) -> dict:
        term_rows = [
            self.model.term_row[t]
            for t in query.terms
            if t in self.model.term_row
        ]
        if not term_rows or not self.model.has_postings:
            return {
                "kind": "search",
                "hits": [],
                "partial": False,
                "failed_shards": [],
            }
        k = min(max(1, query.k), self.n_docs)
        got, dropped = self._fanout(
            self.live,
            "search",
            {
                "term_rows": term_rows,
                "icf": self.icf,
                "k": k,
                "pruned": self.config.pruned_search,
            },
        )
        return self._merged_response("search", got, dropped, k)

    def _exec_search_batch(self, queries: list[Query]) -> list[dict]:
        """Answer several search queries with one shard round-trip.

        Members with no known terms (or a store without postings) get
        the fixed empty response inline, exactly like
        :meth:`_exec_search`; the rest share a single ``search_batch``
        fan-out so every shard decodes its postings once per batch
        instead of once per query.  Merging stays per member, so each
        response is identical to what :meth:`_exec_search` would have
        produced for that query alone.
        """
        empty = {
            "kind": "search",
            "hits": [],
            "partial": False,
            "failed_shards": [],
        }
        out: list[Optional[dict]] = [None] * len(queries)
        resolved: list[tuple[int, list, int]] = []
        for i, query in enumerate(queries):
            term_rows = [
                self.model.term_row[t]
                for t in query.terms
                if t in self.model.term_row
            ]
            if not term_rows or not self.model.has_postings:
                out[i] = dict(empty)
                continue
            k = min(max(1, query.k), self.n_docs)
            resolved.append((i, term_rows, k))
        if resolved:
            got, dropped = self._fanout(
                self.live,
                "search_batch",
                {
                    "requests": [(tr, k) for _, tr, k in resolved],
                    "icf": self.icf,
                    "pruned": self.config.pruned_search,
                },
            )
            for m, (i, _tr, k) in enumerate(resolved):
                got_m = {s: got[s][m] for s in got}
                out[i] = self._merged_response("search", got_m, dropped, k)
        return out

    def _exec_query(self, query: Query) -> dict:
        rows = [
            self.model.term_row[t]
            for t in query.terms
            if t in self.model.term_row
        ]
        unit = pseudo_signature(self.model.association, rows)
        if unit is None:
            return {
                "kind": "query",
                "hits": [],
                "partial": False,
                "failed_shards": [],
            }
        k = min(max(1, query.k), self.n_docs)
        got, dropped = self._fanout(
            self.live, "matvec", {"unit": unit, "k": k}
        )
        return self._merged_response("query", got, dropped, k)

    def _exec_similar(self, query: Query) -> dict:
        manifest = self.manifest
        owner = None
        for i, s in enumerate(manifest.shards):
            if s.n_docs and s.doc_lo <= query.doc_id <= s.doc_hi:
                owner = i
                break
        if owner is None:
            for d in manifest.deltas:
                if d.n_docs and d.doc_lo <= query.doc_id <= d.doc_hi:
                    owner = d.owner
                    break
        if owner is None:
            return {
                "kind": "similar",
                "hits": [],
                "error": f"unknown doc_id {query.doc_id}",
                "partial": False,
                "failed_shards": [],
            }
        if owner not in self.live:
            # the only shard that could anchor this query is gone
            resp = {"kind": "similar", "hits": []}
            self._flag(resp, [owner])
            return resp
        got, dropped = self._fanout(
            [owner], "fetch_unit", {"doc_id": query.doc_id}
        )
        fetched = got.get(owner)
        if fetched is None:
            resp = {"kind": "similar", "hits": []}
            self._flag(resp, dropped or [owner])
            return resp
        if fetched[0] is None:
            return {
                "kind": "similar",
                "hits": [],
                "error": f"unknown doc_id {query.doc_id}",
                "partial": False,
                "failed_shards": [],
            }
        unit_row, global_row = fetched[0], fetched[1]
        k = min(max(1, query.k), self.n_docs - 1)
        got, dropped2 = self._fanout(
            self.live,
            "matvec",
            {"unit": unit_row, "k": k, "skip_row": global_row},
        )
        return self._merged_response(
            "similar", got, sorted(set(dropped) | set(dropped2)), k
        )

    def _exec_cluster(self, query: Query) -> dict:
        kmax = self.model.centroids.shape[0]
        if not 0 <= query.cluster < kmax:
            return {
                "kind": "cluster",
                "error": (
                    f"cluster {query.cluster} out of range [0, {kmax})"
                ),
                "partial": False,
                "failed_shards": [],
            }
        centroid = self.model.centroids[query.cluster]
        got, dropped = self._fanout(
            self.live,
            "cluster",
            {"cluster": query.cluster, "n_docs": query.n_docs},
        )
        sizes = {s: got[s][0] for s in got}
        per_shard = [got[s][1] for s in sorted(got)]
        size = int(sum(sizes.values()))
        take = min(query.n_docs, size)
        reps = merge_asc(per_shard, take)
        self.ctx.charge_cpu(
            sum(len(p) for p in per_shard) + _DISPATCH_OPS
        )
        resp = {
            "kind": "cluster",
            "cluster": query.cluster,
            "size": size,
            "top_terms": top_positive_terms(
                centroid, self.model.topic_terms, query.n_terms
            ),
            "representative_docs": [c.doc_id for c in reps],
            "centroid_norm": float(np.linalg.norm(centroid)),
        }
        self._flag(resp, dropped)
        return resp

    def _exec_region(self, query: Query) -> dict:
        got, dropped = self._fanout(
            self.live,
            "region",
            {"x": query.x, "y": query.y, "radius": query.radius},
        )
        parts = [got[s] for s in sorted(got) if got[s][0].size]
        size = int(sum(got[s][0].size for s in got))
        if size == 0:
            resp = {"kind": "region", "size": 0, "terms": []}
            self._flag(resp, dropped)
            return resp
        # reassembling the shard blocks in global row order rebuilds
        # the exact contiguous array the reference session reduces, so
        # the mean is bit-identical to the unsharded path; on static
        # stores the permutation is the identity (shard order IS row
        # order), on generational stores it interleaves delta rows back
        # into collection order
        rows = np.concatenate([p[0] for p in parts])
        block = np.concatenate([p[1] for p in parts], axis=0)
        order = np.argsort(rows, kind="stable")
        mean_sig = block[order].mean(axis=0)
        self.ctx.charge_flops(size * mean_sig.shape[0] + _DISPATCH_OPS)
        resp = {
            "kind": "region",
            "size": size,
            "terms": top_positive_terms(
                mean_sig, self.model.topic_terms, query.n_terms
            ),
        }
        self._flag(resp, dropped)
        return resp

    # -- window analytics (stamped stores) -----------------------------
    def _facet_error(self, kind: str) -> dict:
        """Typed answer for a facet query against an unstamped store."""
        return {
            "kind": kind,
            "error": (
                "store is not stamped: no facet sections "
                "(rebuild from a stamped corpus)"
            ),
            "partial": False,
            "failed_shards": [],
        }

    def _count_facets(
        self, kind: str, scanned: int, hits: int = 0
    ) -> None:
        if self.c_facet_windows is None:
            return
        self.c_facet_windows.inc(self.mrank, key=(kind,))
        self.c_facet_bytes.inc(self.mrank, float(scanned))
        if hits:
            self.c_facet_emerging.inc(self.mrank, float(hits))

    def _exec_facet_counts(self, query: Query) -> dict:
        fac = self.manifest.facets
        if fac is None:
            return self._facet_error("facet_counts")
        got, dropped = self._fanout(
            self.live,
            "facet_counts",
            {"t0": query.t0, "t1": query.t1, "n_sources": fac.n_sources},
        )
        counts = np.zeros(fac.n_sources, dtype=np.int64)
        scanned = 0
        for s in sorted(got):
            c, sc = got[s]
            counts += c
            scanned += sc
        self.ctx.charge_cpu(
            fac.n_sources * max(1, len(got)) + _DISPATCH_OPS
        )
        self._count_facets("facet_counts", scanned)
        resp = {
            "kind": "facet_counts",
            "t0": query.t0,
            "t1": query.t1,
            "sources": list(fac.source_names),
            "counts": [int(c) for c in counts],
            "total": int(counts.sum()),
        }
        self._flag(resp, dropped)
        return resp

    def _merge_window_tf(
        self, got: dict[int, object], slot: int
    ) -> tuple[np.ndarray, int, int]:
        """Sum one window slot's per-shard int64 partials in sorted
        shard order -- associative, so any shard layout lands on the
        identical totals."""
        totals = np.zeros(self.model.term_df.shape[0], dtype=np.int64)
        n_docs = 0
        scanned = 0
        for s in sorted(got):
            pairs, sc = got[s]
            t, n = pairs[slot]
            totals += t
            n_docs += int(n)
            scanned += sc
        return totals, n_docs, scanned

    def _exec_window_terms(self, query: Query) -> dict:
        fac = self.manifest.facets
        if fac is None:
            return self._facet_error("window_terms")
        if not self.model.has_postings:
            return self._facet_error("window_terms")
        got, dropped = self._fanout(
            self.live,
            "window_tf",
            {"t0": query.t0, "t1": query.t1, "source": query.source},
        )
        totals, window_docs, scanned = self._merge_window_tf(got, 0)
        pos = np.flatnonzero(totals > 0)
        sel = topk_int_score_row(
            totals[pos], pos, max(1, query.n_terms)
        )
        rows = pos[sel]
        self.ctx.charge_cpu(int(totals.shape[0]) + _DISPATCH_OPS)
        self._count_facets("window_terms", scanned)
        resp = {
            "kind": "window_terms",
            "t0": query.t0,
            "t1": query.t1,
            "source": query.source,
            "window_docs": window_docs,
            "terms": [
                {
                    "term": self.model.terms[int(r)],
                    "tf": int(totals[int(r)]),
                }
                for r in rows
            ],
        }
        self._flag(resp, dropped)
        return resp

    def _exec_emerging(self, query: Query) -> dict:
        fac = self.manifest.facets
        if fac is None:
            return self._facet_error("emerging")
        if not self.model.has_postings:
            return self._facet_error("emerging")
        got, dropped = self._fanout(
            self.live,
            "window_tf",
            {
                "t0": query.t0,
                "t1": query.t1,
                "source": query.source,
                "pair": True,
            },
        )
        prev, prev_docs, scanned = self._merge_window_tf(got, 0)
        cur, cur_docs, _ = self._merge_window_tf(got, 1)
        scores = emerging_scores(prev, cur)
        keep = np.flatnonzero((cur > 0) & (scores > 0))
        sel = topk_int_score_row(
            scores[keep], keep, max(1, query.n_terms)
        )
        rows = keep[sel]
        self.ctx.charge_cpu(3 * int(cur.shape[0]) + _DISPATCH_OPS)
        self._count_facets("emerging", scanned, hits=int(rows.size))
        resp = {
            "kind": "emerging",
            "t0": query.t0,
            "t1": query.t1,
            "source": query.source,
            "window_docs": cur_docs,
            "prev_docs": prev_docs,
            "terms": [
                {
                    "term": self.model.terms[int(r)],
                    "score": int(scores[int(r)]),
                    "tf": int(cur[int(r)]),
                    "prev_tf": int(prev[int(r)]),
                }
                for r in rows
            ],
        }
        self._flag(resp, dropped)
        return resp

    # -- closed-loop event pump ----------------------------------------
    def _admit(self, script: ClientScript, depth: int) -> bool:
        """Whether a query may enter at the given in-flight depth."""
        return depth < self.config.max_inflight

    def _on_reject(
        self,
        client: int,
        seq: int,
        query: Query,
        script: ClientScript,
        depth: int,
        rejected: list,
    ) -> None:
        """Record one turned-away query (subclass hook)."""
        self.c_rejected.inc(self.mrank)
        rejected.append({"client": client, "seq": seq, "kind": query.kind})

    def _shutdown(self) -> None:
        """End-of-session: stop the shard ranks this broker owns."""
        for s in self.live:
            self.ctx.comm.send(
                self._shard_rank(s), ("stop",), tag=TAG_REQ
            )

    def _build_report(
        self,
        responses: list[dict],
        latencies: list[float],
        rejected: list,
    ) -> ServeReport:
        return ServeReport(
            responses=responses,
            latencies=latencies,
            rejected=rejected,
            failed_ranks=sorted(
                s + 1 for s in range(self.nshards) if s not in self.live
            ),
            makespan=self.ctx.now,
            generations=self.gen_stats,
        )

    def pump(self, scripts: list[ClientScript]) -> ServeReport:
        ctx, cfg = self.ctx, self.config
        heap: list[tuple[float, int, int]] = []
        for c, script in enumerate(scripts):
            if script.queries:
                heapq.heappush(heap, (script.think_s[0], c, 0))
        responses: list[dict] = []
        latencies: list[float] = []
        rejected: list = []
        finishes: list[float] = []  # ascending: server is sequential

        def _next(client: int, seq: int, now: float) -> None:
            script = scripts[client]
            if seq + 1 < len(script.queries):
                heapq.heappush(
                    heap, (now + script.think_s[seq + 1], client, seq + 1)
                )

        def _record(
            idx: int, seq: int, arrival: float, query: Query,
            resp: dict, cached: bool,
        ) -> None:
            script = scripts[idx]
            finish = ctx.now
            latency = finish - arrival
            self.h_latency.observe(self.mrank, latency, key=(query.kind,))
            stats = self.gen_stats.setdefault(
                self.epoch,
                {"queries": 0, "first_virtual_s": float(arrival)},
            )
            stats["queries"] += 1
            responses.append(
                {
                    "client": script.client,
                    "seq": seq,
                    "kind": query.kind,
                    "cached": cached,
                    "generation": self.epoch,
                    "response": resp,
                }
            )
            latencies.append(latency)
            finishes.append(finish)
            _next(idx, seq, finish)

        def _store(key: tuple, resp: dict) -> None:
            if resp.get("partial"):
                self.c_degraded.inc(self.mrank)
            elif cfg.cache_capacity > 0:
                self.cache[key] = resp
                if len(self.cache) > cfg.cache_capacity:
                    self.cache.popitem(last=False)
                    self.c_evict.inc(self.mrank)

        while heap:
            # heap entries carry the *position* in ``scripts``; response
            # records carry the script's own client id (they differ when
            # a tier broker pumps a routed subset of the client set)
            arrival, idx, seq = heapq.heappop(heap)
            script = scripts[idx]
            query = script.queries[seq]
            self.c_queries.inc(self.mrank, key=(query.kind,))
            # admission control: accepted-but-unfinished depth at arrival
            depth = len(finishes) - bisect_right(finishes, arrival)
            if not self._admit(script, depth):
                ctx.charge_cpu(_REJECT_OPS)
                self._on_reject(
                    script.client, seq, query, script, depth, rejected
                )
                _next(idx, seq, arrival)
                continue
            if ctx.now < arrival:
                ctx.charge(arrival - ctx.now)
            # pin this query's epoch: reload happens between queries,
            # never inside a fan-out
            self._maybe_reload()
            key = (self.epoch,) + query.key()
            if cfg.cache_capacity > 0 and key in self.cache:
                self.c_hit.inc(self.mrank)
                self.cache.move_to_end(key)
                ctx.charge_cpu(_CACHE_HIT_OPS)
                _record(idx, seq, arrival, query, self.cache[key], True)
                continue
            self.c_miss.inc(self.mrank)
            if (
                query.kind != "search"
                or cfg.batch_max_queries <= 1
                or self.generational
            ):
                resp = self.execute(query)
                _store(key, resp)
                _record(idx, seq, arrival, query, resp, False)
                continue
            # -- cross-query batching: drain search queries that have
            # already arrived into one shard round-trip.  Members keep
            # their own admission check, cache lookup, and response
            # identity; they only share the fan-out (and with it the
            # shard-side postings decode) and a common finish time.
            batch = [(idx, seq, arrival, query, key)]
            while heap and len(batch) < cfg.batch_max_queries:
                a2, i2, s2 = heap[0]
                q2 = scripts[i2].queries[s2]
                if a2 > ctx.now or q2.kind != "search":
                    break
                heapq.heappop(heap)
                script2 = scripts[i2]
                self.c_queries.inc(self.mrank, key=(q2.kind,))
                # accepted-but-unfinished depth counts the batch being
                # assembled: its members are admitted but not served
                depth2 = (
                    len(finishes)
                    - bisect_right(finishes, a2)
                    + len(batch)
                )
                if not self._admit(script2, depth2):
                    ctx.charge_cpu(_REJECT_OPS)
                    self._on_reject(
                        script2.client, s2, q2, script2, depth2, rejected
                    )
                    _next(i2, s2, a2)
                    continue
                key2 = (self.epoch,) + q2.key()
                if cfg.cache_capacity > 0 and key2 in self.cache:
                    self.c_hit.inc(self.mrank)
                    self.cache.move_to_end(key2)
                    ctx.charge_cpu(_CACHE_HIT_OPS)
                    _record(i2, s2, a2, q2, self.cache[key2], True)
                    continue
                self.c_miss.inc(self.mrank)
                batch.append((i2, s2, a2, q2, key2))
            resps = self._exec_search_batch([b[3] for b in batch])
            for (i2, s2, a2, q2, key2), resp in zip(batch, resps):
                _store(key2, resp)
                _record(i2, s2, a2, q2, resp, False)

        self._shutdown()
        return self._build_report(responses, latencies, rejected)


def _serve_main(
    ctx, store_dir: str, scripts, config: BrokerConfig, nshards: int, ingest
):
    if ctx.rank == 0:
        return _Broker(
            ctx, store_dir, config, generational=ingest is not None
        ).pump(list(scripts))
    if ctx.rank <= nshards:
        return _ShardWorker(ctx, store_dir).run()
    return ingest.run(ctx, store_dir)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def serve(
    store_dir: str | os.PathLike,
    scripts: list[ClientScript],
    config: Optional[BrokerConfig] = None,
    machine: Optional[MachineSpec] = None,
    faults=None,
    ingest=None,
    backend: str = "sim",
) -> ServeReport:
    """Run one broker session over a sharded store.

    Spawns ``nshards + 1`` ranks on the deterministic runtime, serves
    every scripted query, and returns the broker's
    :class:`ServeReport` with the run's metrics snapshot attached.
    Under a fault plan the session degrades (partial responses) rather
    than failing: the cluster runs with ``raise_on_failure=False``.

    ``ingest`` (an object with ``run(ctx, store_dir) -> dict``, e.g. an
    :class:`repro.ingest.IngestPlan`) adds one extra driver rank that
    feeds, publishes, and compacts generations while the broker serves;
    its outcome is attached as ``report.ingest``.

    ``backend`` selects the runtime execution backend (``"sim"`` or
    ``"mp"``); reports are bit-identical across backends by the
    runtime's cross-backend contract.
    """
    store_dir = str(store_dir)
    manifest = load_manifest(store_dir)
    config = config if config is not None else BrokerConfig()
    nprocs = manifest.nshards + 1 + (1 if ingest is not None else 0)
    cluster = Cluster(
        nprocs, machine=machine, faults=faults, backend=backend
    )
    result = cluster.run(
        _serve_main,
        store_dir,
        tuple(scripts),
        config,
        manifest.nshards,
        ingest,
        raise_on_failure=False,
    )
    report = result.rank_results[0]
    if report is None:
        raise RankFailedError(
            result.failed_ranks, "broker rank crashed"
        )
    report.metrics = result.metrics.snapshot()
    report.failed_ranks = sorted(
        set(report.failed_ranks) | set(result.failed_ranks)
    )
    if ingest is not None:
        report.ingest = result.rank_results[manifest.nshards + 1]
    return report


def query_store(
    store_dir: str | os.PathLike,
    query: Query,
    config: Optional[BrokerConfig] = None,
    machine: Optional[MachineSpec] = None,
) -> dict:
    """Answer one query against a store (the ``serve-query`` path)."""
    script = ClientScript(client=0, queries=(query,), think_s=(0.0,))
    report = serve(store_dir, [script], config=config, machine=machine)
    return report.responses[0]["response"]
