"""Deterministic replica placement and per-replica health tracking.

Placement is classic consistent hashing with virtual nodes: every
worker contributes ``vnodes`` points on a 64-bit ring (a keyed
blake2b hash -- Python's builtin ``hash`` is salted per process and
must not leak into placement), and shard ``s`` takes the first
``replicas`` *distinct* workers clockwise from its own ring point.
The map is a pure function of ``(worker ids, nshards, replicas,
vnodes, seed)``: no randomness, no process state, no scheduler
interaction -- which is what makes placement trivially bit-identical
across the fast-path and slow-path scheduler mechanisms and across
repeated runs.

Consistent hashing buys the *minimal-remap* property the serving tier
leans on during resize: removing one worker only reassigns the
(shard, replica) slots that worker held (each falls to the next
distinct worker on the ring), and adding one worker only steals the
slots whose ring walk now meets the new worker first.  Assignments of
untouched shards are byte-identical -- the Hypothesis suite pins this
down.

:class:`ReplicaHealth` is the router tier's per-worker failure
bookkeeping, a small up/suspect/down state machine over virtual time:

- ``UP``: default; preferred target.
- ``SUSPECT``: a fan-out to the worker timed out while the failure
  detector still believed it alive.  Suspicion is probationary: it
  expires ``probation_s`` virtual seconds later and the worker
  returns to ``UP``.  Suspect workers are used only when no ``UP``
  replica of a shard remains.
- ``DOWN``: the failure detector (or a :class:`RankFailedError`)
  confirmed the crash.  Permanent -- the simulated cluster has no
  rank restart -- and never routed to again.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

UP = "up"
SUSPECT = "suspect"
DOWN = "down"


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of ``key``."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(),
        "big",
    )


@dataclass(frozen=True)
class ReplicaMap:
    """Where every (shard, replica) copy lives.

    ``assignments[s]`` is the ordered tuple of worker ids hosting
    shard ``s`` -- ring order, so ``assignments[s][0]`` is the
    shard's primary.  Build one with :meth:`place`.
    """

    nshards: int
    replicas: int
    workers: tuple[int, ...]
    assignments: tuple[tuple[int, ...], ...]
    vnodes: int = 16
    seed: int = 0

    @classmethod
    def place(
        cls,
        nshards: int,
        replicas: int,
        workers: tuple[int, ...] | list[int] | int,
        vnodes: int = 16,
        seed: int = 0,
    ) -> "ReplicaMap":
        """Place ``replicas`` copies of each shard over ``workers``.

        ``workers`` may be a count (ids ``0..n-1``) or an explicit id
        tuple (ids survive membership changes, which is what the
        minimal-remap property is stated over).
        """
        if isinstance(workers, int):
            workers = tuple(range(workers))
        else:
            workers = tuple(workers)
        if not workers:
            raise ValueError("replica placement needs at least one worker")
        if len(set(workers)) != len(workers):
            raise ValueError(f"duplicate worker ids: {workers}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if replicas > len(workers):
            raise ValueError(
                f"cannot place {replicas} replicas on "
                f"{len(workers)} workers"
            )
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        ring = sorted(
            (stable_hash(f"{seed}/worker-{w}/vnode-{v}"), w)
            for w in workers
            for v in range(vnodes)
        )
        points = [p for p, _ in ring]
        owners = [w for _, w in ring]
        n = len(ring)
        assignments = []
        for s in range(nshards):
            start = stable_hash(f"{seed}/shard-{s}")
            # first ring point at or clockwise-after the shard's point
            lo, hi = 0, n
            while lo < hi:
                mid = (lo + hi) // 2
                if points[mid] < start:
                    lo = mid + 1
                else:
                    hi = mid
            chosen: list[int] = []
            for i in range(n):
                w = owners[(lo + i) % n]
                if w not in chosen:
                    chosen.append(w)
                    if len(chosen) == replicas:
                        break
            assignments.append(tuple(chosen))
        return cls(
            nshards=nshards,
            replicas=replicas,
            workers=workers,
            assignments=tuple(assignments),
            vnodes=vnodes,
            seed=seed,
        )

    def workers_for(self, shard: int) -> tuple[int, ...]:
        """Ordered worker ids hosting ``shard`` (primary first)."""
        return self.assignments[shard]

    def shards_of(self, worker: int) -> tuple[int, ...]:
        """Shards hosted (at any replica slot) by ``worker``."""
        return tuple(
            s
            for s in range(self.nshards)
            if worker in self.assignments[s]
        )

    def to_dict(self) -> dict:
        """JSON-friendly form for reports and manifests."""
        return {
            "nshards": self.nshards,
            "replicas": self.replicas,
            "workers": list(self.workers),
            "vnodes": self.vnodes,
            "seed": self.seed,
            "assignments": [list(a) for a in self.assignments],
        }


@dataclass
class ReplicaHealth:
    """Up/suspect/down state of every worker, in virtual time."""

    probation_s: float = 10.0
    _suspect_until: dict[int, float] = field(default_factory=dict)
    _down: set[int] = field(default_factory=set)
    #: transition tallies for the session report
    suspicions: int = 0
    downs: int = 0

    def state(self, worker: int, now: float) -> str:
        if worker in self._down:
            return DOWN
        until = self._suspect_until.get(worker)
        if until is not None and now < until:
            return SUSPECT
        return UP

    def mark_suspect(self, worker: int, now: float) -> None:
        """Probationary suspicion after a timeout; expires on its own."""
        if worker in self._down:
            return
        self._suspect_until[worker] = now + self.probation_s
        self.suspicions += 1

    def mark_down(self, worker: int) -> None:
        """Confirmed crash; permanent."""
        if worker not in self._down:
            self._down.add(worker)
            self._suspect_until.pop(worker, None)
            self.downs += 1

    def is_down(self, worker: int) -> bool:
        return worker in self._down

    def preference(
        self, candidates: tuple[int, ...], now: float
    ) -> list[int]:
        """Candidates worth sending to, best state first.

        Keeps the ring order within each state class (UP before
        SUSPECT) and drops DOWN workers entirely.
        """
        up = [w for w in candidates if self.state(w, now) == UP]
        sus = [w for w in candidates if self.state(w, now) == SUSPECT]
        return up + sus

    def snapshot(self, now: float) -> dict[str, list[int]]:
        """Workers by state at ``now`` (for reports)."""
        seen = sorted(
            set(self._down) | set(self._suspect_until)
        )
        out: dict[str, list[int]] = {UP: [], SUSPECT: [], DOWN: []}
        for w in seen:
            out[self.state(w, now)].append(w)
        return out
