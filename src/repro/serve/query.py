"""Per-shard query execution over the on-disk store.

A :class:`ShardStore` wraps one shard container plus the replicated
model and executes the shard-local half of every query operator.  All
scoring goes through the *same module-level kernels* as
:class:`repro.analysis.session.AnalysisSession` -- every per-document
float is produced by an identical sequence of float ops on identical
row data, which is what makes the broker's merged answers bit-identical
to the single-result reference path (the acceptance criterion of the
serving layer).

Each operator returns per-document *candidates* keyed by
``(score, global_row)`` so the broker can merge shards' top-k lists
with the same deterministic tie-breaking a global stable argsort would
apply, plus the number of payload bytes it scanned (the accounting
input for ``serve.shard.bytes_scanned``).

The broker-side merge helpers and the canonical response serialization
(used by the determinism byte-compare tests) also live here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.session import (
    centroid_distances,
    cosine_scores,
    point_distances,
    topk_asc,
    topk_desc,
    unit_rows,
)
from repro.index.termindex import TermPostings, accumulate_tficf
from repro.serve.store import (
    Container,
    ServeModel,
    decode_postings,
)

QUERY_KINDS = ("search", "query", "similar", "cluster", "region")


@dataclass(frozen=True)
class Query:
    """One analyst request against the store.

    ``kind`` selects the operator: ``search`` (ranked tf·icf term
    search), ``query`` (pseudo-signature cosine ranking), ``similar``
    (k-NN of one document), ``cluster`` (cluster summary), ``region``
    (landscape-region topic terms).  Unused fields stay at their
    defaults; :meth:`key` is the cache key.
    """

    kind: str
    terms: tuple[str, ...] = ()
    doc_id: int = -1
    cluster: int = -1
    x: float = 0.0
    y: float = 0.0
    radius: float = 0.0
    k: int = 10
    n_terms: int = 6
    n_docs: int = 5

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; "
                f"expected one of {QUERY_KINDS}"
            )

    def key(self) -> tuple:
        """Hashable identity for result caching."""
        return (
            self.kind,
            self.terms,
            self.doc_id,
            self.cluster,
            self.x,
            self.y,
            self.radius,
            self.k,
            self.n_terms,
            self.n_docs,
        )


@dataclass(frozen=True)
class Candidate:
    """One shard-local scored document, keyed for the global merge."""

    score: float
    row: int  # global document row
    doc_id: int
    cluster: int


class ShardStore:
    """One shard's documents, loaded lazily from its container."""

    def __init__(self, container: Container, model: ServeModel):
        self.container = container
        self.model = model
        self.row_lo = int(container.meta["row_lo"])
        self.row_hi = int(container.meta["row_hi"])
        self.doc_ids = np.asarray(container.load("doc_ids"))
        self.assignments = np.asarray(container.load("assignments"))
        self._unit: Optional[np.ndarray] = None
        self._sigs: Optional[np.ndarray] = None
        self._postings: Optional[TermPostings] = None

    @property
    def n_docs(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def signatures(self) -> np.ndarray:
        if self._sigs is None:
            self._sigs = np.asarray(self.container.load("signatures"))
        return self._sigs

    @property
    def unit(self) -> np.ndarray:
        if self._unit is None:
            self._unit = unit_rows(self.signatures)
        return self._unit

    @property
    def postings(self) -> TermPostings:
        if self._postings is None:
            if "post_offsets" not in self.container:
                raise KeyError(
                    f"{self.container.path}: shard was built without "
                    "postings (pass a corpus to build_shards)"
                )
            self._postings = decode_postings(
                self.n_docs,
                np.asarray(self.container.load("post_offsets")),
                np.asarray(self.container.load("post_rows_delta")),
                np.asarray(self.container.load("post_tf")),
            )
        return self._postings

    def _candidates(
        self, local_idx: np.ndarray, scores: np.ndarray
    ) -> list[Candidate]:
        return [
            Candidate(
                score=float(scores[i]),
                row=self.row_lo + int(i),
                doc_id=int(self.doc_ids[i]),
                cluster=int(self.assignments[i]),
            )
            for i in local_idx
        ]

    # ------------------------------------------------------------------
    # operators (shard-local halves)
    # ------------------------------------------------------------------
    def op_fetch_unit(
        self, doc_id: int
    ) -> tuple[Optional[np.ndarray], int, int]:
        """``(unit signature row, global row, bytes scanned)`` of one
        locally-owned document (``(None, -1, scanned)`` if absent)."""
        scanned = self.doc_ids.nbytes
        rows = np.flatnonzero(self.doc_ids == doc_id)
        if rows.size == 0:
            return None, -1, scanned
        row = int(rows[0])
        return (
            self.unit[row].copy(),
            self.row_lo + row,
            scanned + self.unit[row].nbytes,
        )

    def op_matvec(
        self,
        unit_query: np.ndarray,
        k: int,
        skip_row: int = -1,
    ) -> tuple[list[Candidate], int]:
        """Local cosine top-k against a unit query vector.

        ``skip_row`` (a *global* row) masks the query document itself
        for k-NN, exactly like the session's ``sims[row] = -inf``.
        """
        sims = cosine_scores(self.unit, unit_query)
        if self.row_lo <= skip_row < self.row_hi:
            sims[skip_row - self.row_lo] = -np.inf
        take = min(k, sims.shape[0])
        idx = topk_desc(sims, take)
        return self._candidates(idx, sims), self.unit.nbytes

    def op_search(
        self, term_rows: list[int], icf: np.ndarray, k: int
    ) -> tuple[list[Candidate], int]:
        """Local tf·icf ranked search over the shard's postings."""
        postings = self.postings
        scores = np.zeros(self.n_docs, dtype=np.float64)
        scanned_postings = accumulate_tficf(
            postings, term_rows, icf, scores
        )
        take = min(k, scores.shape[0])
        idx = topk_desc(scores, take)
        idx = idx[scores[idx] > 0]
        # each posting stores a delta-coded row and a tf (8 bytes each)
        return self._candidates(idx, scores), scanned_postings * 16

    def op_cluster(
        self, cluster: int, n_docs: int
    ) -> tuple[int, list[Candidate], int]:
        """Local member count + nearest-to-centroid candidates."""
        centroid = self.model.centroids[cluster]
        members = np.flatnonzero(self.assignments == cluster)
        scanned = self.assignments.nbytes
        if members.size == 0:
            return 0, [], scanned
        d2 = centroid_distances(self.signatures[members], centroid)
        take = min(n_docs, members.size)
        idx = topk_asc(d2, take)
        cands = [
            Candidate(
                score=float(d2[j]),
                row=self.row_lo + int(members[j]),
                doc_id=int(self.doc_ids[members[j]]),
                cluster=cluster,
            )
            for j in idx
        ]
        return int(members.size), cands, scanned + members.size * (
            self.signatures.shape[1] * 8
        )

    def op_region(
        self, x: float, y: float, radius: float
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Global rows + signature block of local in-circle documents.

        The *broker* computes the region mean on the concatenation of
        all shards' blocks (global row order) so the reduction is
        bit-identical to the session's single-array mean.
        """
        coords = np.asarray(self.container.load("coords"))
        d2 = point_distances(coords, x, y)
        mask = d2 <= radius * radius
        scanned = coords.nbytes
        if not mask.any():
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, self.model.centroids.shape[1])),
                scanned,
            )
        block = self.signatures[mask]
        rows = self.row_lo + np.flatnonzero(mask).astype(np.int64)
        return rows, block, scanned + block.nbytes


# ----------------------------------------------------------------------
# broker-side merges
# ----------------------------------------------------------------------
def merge_desc(
    per_shard: list[list[Candidate]], k: int
) -> list[Candidate]:
    """Global top-k by (score desc, global row asc).

    Equivalent to a stable global argsort on descending score: shard
    lists are already row-ordered within equal scores, so sorting the
    concatenation by ``(-score, row)`` reproduces the reference order.
    """
    merged = [c for cands in per_shard for c in cands]
    merged.sort(key=lambda c: (-c.score, c.row))
    return merged[:k]


def merge_asc(
    per_shard: list[list[Candidate]], k: int
) -> list[Candidate]:
    """Global bottom-k by (score asc, global row asc)."""
    merged = [c for cands in per_shard for c in cands]
    merged.sort(key=lambda c: (c.score, c.row))
    return merged[:k]


def hits_payload(cands: list[Candidate]) -> list[dict]:
    """JSON-native hit list of a merged candidate ranking."""
    return [
        {"doc": c.doc_id, "score": c.score, "cluster": c.cluster}
        for c in cands
    ]


def canonical_response(response: dict) -> bytes:
    """Canonical serialized form of one response.

    Sorted keys, minimal separators, UTF-8: two responses are
    bit-identical iff these bytes are equal (the determinism tests'
    comparison oracle).
    """
    return json.dumps(
        response, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
