"""Per-shard query execution over the on-disk store.

A :class:`ShardStore` wraps one shard container plus the replicated
model and executes the shard-local half of every query operator.  All
scoring goes through the *same module-level kernels* as
:class:`repro.analysis.session.AnalysisSession` -- every per-document
float is produced by an identical sequence of float ops on identical
row data, which is what makes the broker's merged answers bit-identical
to the single-result reference path (the acceptance criterion of the
serving layer).

Each operator returns per-document *candidates* keyed by
``(score, global_row)`` so the broker can merge shards' top-k lists
with the same deterministic tie-breaking a global stable argsort would
apply, plus the number of payload bytes it scanned (the accounting
input for ``serve.shard.bytes_scanned``).

The broker-side merge helpers and the canonical response serialization
(used by the determinism byte-compare tests) also live here.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.session import (
    centroid_distances,
    cosine_scores,
    point_distances,
    topk_asc,
    topk_desc,
    unit_rows,
)
from repro.index.termindex import (
    TermPostings,
    accumulate_tficf,
    set_term_tf,
    topk_score_row,
)
from repro.serve.store import (
    BlockPostings,
    Container,
    FacetSections,
    ServeModel,
    load_facet_sections,
    load_segment_postings,
)

#: window-analytics kinds: answerable only on stamped (facet) stores
FACET_QUERY_KINDS = ("facet_counts", "window_terms", "emerging")
QUERY_KINDS = (
    "search",
    "query",
    "similar",
    "cluster",
    "region",
) + FACET_QUERY_KINDS


@dataclass(frozen=True)
class Query:
    """One analyst request against the store.

    ``kind`` selects the operator: ``search`` (ranked tf·icf term
    search), ``query`` (pseudo-signature cosine ranking), ``similar``
    (k-NN of one document), ``cluster`` (cluster summary), ``region``
    (landscape-region topic terms), plus the window-analytics kinds
    over stamped stores: ``facet_counts`` (per-source counts in
    ``[t0, t1)``), ``window_terms`` (exact top terms by int64 tf
    inside the window), ``emerging`` (terms rising against the
    preceding window of equal width).  Unused fields stay at their
    defaults; :meth:`key` is the cache key.
    """

    kind: str
    terms: tuple[str, ...] = ()
    doc_id: int = -1
    cluster: int = -1
    x: float = 0.0
    y: float = 0.0
    radius: float = 0.0
    k: int = 10
    n_terms: int = 6
    n_docs: int = 5
    #: window bounds (``t0 <= stamp < t1``, virtual seconds)
    t0: float = 0.0
    t1: float = 0.0
    #: source-region filter (``-1`` = all sources)
    source: int = -1

    def __post_init__(self):
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; "
                f"expected one of {QUERY_KINDS}"
            )

    def key(self) -> tuple:
        """Hashable identity for result caching."""
        return (
            self.kind,
            self.terms,
            self.doc_id,
            self.cluster,
            self.x,
            self.y,
            self.radius,
            self.k,
            self.n_terms,
            self.n_docs,
            self.t0,
            self.t1,
            self.source,
        )


@dataclass(frozen=True)
class Candidate:
    """One shard-local scored document, keyed for the global merge."""

    score: float
    row: int  # global document row
    doc_id: int
    cluster: int


class ShardStore:
    """One shard's documents, loaded lazily from its container."""

    def __init__(self, container: Container, model: ServeModel):
        self.container = container
        self.model = model
        self.row_lo = int(container.meta["row_lo"])
        self.row_hi = int(container.meta["row_hi"])
        self.doc_ids = np.asarray(container.load("doc_ids"))
        self.assignments = np.asarray(container.load("assignments"))
        self._unit: Optional[np.ndarray] = None
        self._sigs: Optional[np.ndarray] = None
        self._postings: Optional[TermPostings] = None
        self._blocks: Optional[BlockPostings] = None
        self._blocks_probed = False
        self._facets: Optional[FacetSections] = None
        self._facets_probed = False

    @property
    def n_docs(self) -> int:
        return self.row_hi - self.row_lo

    @property
    def signatures(self) -> np.ndarray:
        if self._sigs is None:
            self._sigs = np.asarray(self.container.load("signatures"))
        return self._sigs

    @property
    def unit(self) -> np.ndarray:
        if self._unit is None:
            self._unit = unit_rows(self.signatures)
        return self._unit

    @property
    def postings(self) -> TermPostings:
        if self._postings is None:
            if "post_offsets" not in self.container:
                raise KeyError(
                    f"{self.container.path}: shard was built without "
                    "postings (pass a corpus to build_shards)"
                )
            self._postings = load_segment_postings(
                self.container, self.n_docs
            )
        return self._postings

    @property
    def blocks(self) -> Optional[BlockPostings]:
        """Lazy block-aligned postings, or ``None`` on legacy (v1)
        containers without block sections -- the exhaustive-fallback
        signal for :meth:`op_search`."""
        if not self._blocks_probed:
            self._blocks_probed = True
            if "post_block_offsets" in self.container:
                self._blocks = BlockPostings(self.container, self.n_docs)
        return self._blocks

    @property
    def facets(self) -> Optional[FacetSections]:
        """Lazy facet sections, or ``None`` on pre-facet (v1/v2)
        containers -- the unstamped-store signal the broker turns into
        a typed error instead of a fan-out."""
        if not self._facets_probed:
            self._facets_probed = True
            self._facets = load_facet_sections(
                self.container, self.n_docs
            )
        return self._facets

    def _candidates(
        self, local_idx: np.ndarray, scores: np.ndarray
    ) -> list[Candidate]:
        local_idx = np.asarray(local_idx, dtype=np.int64)
        return self._candidate_list(
            local_idx,
            np.asarray(scores, dtype=np.float64)[local_idx],
        )

    def _candidate_list(
        self, local_idx: np.ndarray, cand_scores: np.ndarray
    ) -> list[Candidate]:
        """Candidates from parallel (local row, score) arrays.

        Gathers every field with array indexing and one ``tolist`` per
        column -- same values and ordering as the old per-candidate
        loop, without the per-element numpy scalar boxing.
        """
        local_idx = np.asarray(local_idx, dtype=np.int64)
        rows = (self.row_lo + local_idx).tolist()
        scores = np.asarray(cand_scores, dtype=np.float64).tolist()
        docs = np.asarray(self.doc_ids, dtype=np.int64)[
            local_idx
        ].tolist()
        clusters = np.asarray(self.assignments, dtype=np.int64)[
            local_idx
        ].tolist()
        return [
            Candidate(score=s, row=r, doc_id=d, cluster=c)
            for s, r, d, c in zip(scores, rows, docs, clusters)
        ]

    # ------------------------------------------------------------------
    # operators (shard-local halves)
    # ------------------------------------------------------------------
    def op_fetch_unit(
        self, doc_id: int
    ) -> tuple[Optional[np.ndarray], int, int]:
        """``(unit signature row, global row, bytes scanned)`` of one
        locally-owned document (``(None, -1, scanned)`` if absent)."""
        scanned = self.doc_ids.nbytes
        rows = np.flatnonzero(self.doc_ids == doc_id)
        if rows.size == 0:
            return None, -1, scanned
        row = int(rows[0])
        return (
            self.unit[row].copy(),
            self.row_lo + row,
            scanned + self.unit[row].nbytes,
        )

    def _local_restrict(
        self, restrict_rows: np.ndarray
    ) -> np.ndarray:
        """Shard-local rows of the globally-rowed restriction set."""
        rows = np.asarray(restrict_rows, dtype=np.int64)
        rows = rows[(rows >= self.row_lo) & (rows < self.row_hi)]
        return rows - self.row_lo

    def op_matvec(
        self,
        unit_query: np.ndarray,
        k: int,
        skip_row: int = -1,
        restrict_rows: Optional[np.ndarray] = None,
    ) -> tuple[list[Candidate], int]:
        """Local cosine top-k against a unit query vector.

        ``skip_row`` (a *global* row) masks the query document itself
        for k-NN, exactly like the session's ``sims[row] = -inf``.
        ``restrict_rows`` (global rows) limits ranking to a result
        set's members -- the workbench ``refine`` path.  Scores are
        per-row cosines either way, so restriction changes which rows
        compete, never any row's float.
        """
        sims = cosine_scores(self.unit, unit_query)
        if self.row_lo <= skip_row < self.row_hi:
            sims[skip_row - self.row_lo] = -np.inf
        if restrict_rows is not None:
            local = self._local_restrict(restrict_rows)
            sims_r = sims[local]
            sel = topk_score_row(sims_r, local, k)
            return (
                self._candidate_list(local[sel], sims_r[sel]),
                self.unit.nbytes,
            )
        take = min(k, sims.shape[0])
        idx = topk_desc(sims, take)
        return self._candidates(idx, sims), self.unit.nbytes

    def op_search(
        self,
        term_rows: list[int],
        icf: np.ndarray,
        k: int,
        pruned: bool = True,
        restrict_rows: Optional[np.ndarray] = None,
    ) -> tuple[list[Candidate], int, int]:
        """Local tf·icf ranked search over the shard's postings.

        Returns ``(candidates, bytes scanned, blocks skipped)``.  With
        block sections present (format v2) and ``pruned``, runs the
        exact block-max kernel and reports only the posting bytes it
        actually decoded; legacy containers and ``pruned=False`` score
        exhaustively (0 blocks skipped by definition).  Both paths
        return bit-identical candidates -- the pruning exactness oracle.

        ``restrict_rows`` (global rows) limits the ranking to a result
        set's members (the workbench ``refine`` path).  Restricted
        search always scores exhaustively: block-max prunes by global
        score bounds, which are not bounds within an arbitrary subset.
        Restriction never changes a surviving row's float -- scores are
        accumulated over all postings in query-term order first, then
        filtered -- so refined scores equal unrestricted scores on the
        same rows bit for bit.
        """
        if restrict_rows is not None:
            postings = self.postings
            scores = np.zeros(self.n_docs, dtype=np.float64)
            scanned_postings = accumulate_tficf(
                postings, term_rows, icf, scores
            )
            local = self._local_restrict(restrict_rows)
            sc = scores[local]
            pos = sc > 0
            local = local[pos]
            sc = sc[pos]
            sel = topk_score_row(sc, local, k)
            return (
                self._candidate_list(local[sel], sc[sel]),
                scanned_postings * 16,
                0,
            )
        blocks = self.blocks if pruned else None
        if blocks is not None and not np.any(
            np.asarray(icf, dtype=np.float64)[
                np.asarray(term_rows, dtype=np.int64)
            ]
            < 0
        ):
            idx, cand_scores, scanned_postings, skipped = blockmax_search(
                blocks, term_rows, icf, k
            )
            return (
                self._candidate_list(idx, cand_scores),
                scanned_postings * 16,
                skipped,
            )
        postings = self.postings
        scores = np.zeros(self.n_docs, dtype=np.float64)
        scanned_postings = accumulate_tficf(
            postings, term_rows, icf, scores
        )
        take = min(k, scores.shape[0])
        idx = topk_desc(scores, take)
        idx = idx[scores[idx] > 0]
        # each posting stores a delta-coded row and a tf (8 bytes each)
        return self._candidates(idx, scores), scanned_postings * 16, 0

    def op_search_batch(
        self,
        requests: list[tuple[list[int], int]],
        icf: np.ndarray,
        pruned: bool = True,
    ) -> list[tuple[list[Candidate], int, int]]:
        """Batched :meth:`op_search` over ``(term_rows, k)`` requests.

        The batch members share one lazy postings decode (the
        :class:`BlockPostings` per-block row cache persists across
        members), so N queries hitting overlapping terms pay the
        cumsum/decode cost once.  Each member's candidate list is
        bit-identical to a solo :meth:`op_search` call -- the batching
        identity contract.
        """
        return [
            self.op_search(term_rows, icf, k, pruned=pruned)
            for term_rows, k in requests
        ]

    def op_cluster(
        self, cluster: int, n_docs: int
    ) -> tuple[int, list[Candidate], int]:
        """Local member count + nearest-to-centroid candidates."""
        centroid = self.model.centroids[cluster]
        members = np.flatnonzero(self.assignments == cluster)
        scanned = self.assignments.nbytes
        if members.size == 0:
            return 0, [], scanned
        d2 = centroid_distances(self.signatures[members], centroid)
        take = min(n_docs, members.size)
        idx = topk_asc(d2, take)
        cands = [
            Candidate(
                score=float(d2[j]),
                row=self.row_lo + int(members[j]),
                doc_id=int(self.doc_ids[members[j]]),
                cluster=cluster,
            )
            for j in idx
        ]
        return int(members.size), cands, scanned + members.size * (
            self.signatures.shape[1] * 8
        )

    def op_region(
        self, x: float, y: float, radius: float
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Global rows + signature block of local in-circle documents.

        The *broker* computes the region mean on the concatenation of
        all shards' blocks (global row order) so the reduction is
        bit-identical to the session's single-array mean.
        """
        coords = np.asarray(self.container.load("coords"))
        d2 = point_distances(coords, x, y)
        mask = d2 <= radius * radius
        scanned = coords.nbytes
        if not mask.any():
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, self.model.centroids.shape[1])),
                scanned,
            )
        block = self.signatures[mask]
        rows = self.row_lo + np.flatnonzero(mask).astype(np.int64)
        return rows, block, scanned + block.nbytes

    def _require_facets(self) -> FacetSections:
        facets = self.facets
        if facets is None:
            raise KeyError(
                f"{self.container.path}: shard has no facet sections "
                "(pre-facet store; rebuild from a stamped corpus)"
            )
        return facets

    def op_facet_counts(
        self, t0: float, t1: float, n_sources: int
    ) -> tuple[np.ndarray, int]:
        """Local per-source document counts within ``[t0, t1)``.

        Integer counts sum associatively across shards, so the
        broker's merged counts are shard-order-independent.
        """
        return self._require_facets().source_counts(t0, t1, n_sources)

    def op_window_tf(
        self, t0: float, t1: float, source: int = -1
    ) -> tuple[np.ndarray, int, int]:
        """Exact per-term int64 tf totals over the window's rows.

        Returns ``(totals, window doc count, bytes scanned)``.  The
        totals are partial sums the broker adds across shards --
        integer addition is associative, so the merged totals (and
        everything ranked from them) are identical at every shard
        count and shard order.
        """
        rows, scanned = self._require_facets().window_rows(
            t0, t1, source
        )
        totals, scanned_postings = set_term_tf(self.postings, rows)
        return totals, int(rows.size), scanned + scanned_postings * 16

    def op_window_restrict(
        self, rows: np.ndarray, t0: float, t1: float, source: int = -1
    ) -> tuple[np.ndarray, int]:
        """Global rows of the restriction set that fall in the window.

        The workbench ``window`` verb: filter a saved result set's
        locally-owned rows by stamp (and optionally source) without
        rescoring anything.  Returns ascending global rows.
        """
        facets = self._require_facets()
        local = self._local_restrict(rows)
        scanned = 0
        if local.size:
            scanned += 8 * int(local.size)
            stamps = np.asarray(
                facets.stamp_s[local], dtype=np.float64
            )
            keep = (stamps >= t0) & (stamps < t1)
            local = local[keep]
            if source >= 0 and local.size:
                scanned += 8 * int(local.size)
                src = np.asarray(
                    facets.source[local], dtype=np.int64
                )
                local = local[src == source]
        return np.sort(local) + self.row_lo, scanned


# ----------------------------------------------------------------------
# block-max exact top-k
# ----------------------------------------------------------------------
def _single_term_search(
    blocks: BlockPostings, lo: int, hi: int, wp: float, k: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Exact single-term top-k with integer-threshold block skipping.

    With one positive-weight term the k-th largest *tf* bounds the
    k-th score exactly (``tf -> fl(tf·w)`` is monotone, so order
    statistics commute with the rounding), which allows skipping the
    row decode of every block whose ``fl(maxtf·w)`` falls strictly
    below ``fl(kth_tf·w)`` -- no float margin needed.  The per-block
    tf values are read directly (they are a flat section slice); only
    the delta-coded rows of surviving blocks pay the cumsum decode.
    """
    nb = hi - lo
    if nb == 0 or wp <= 0.0:
        # zero weight: every score is 0 and the positive filter drops
        # all of them, so nothing needs decoding at all
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            0,
            nb,
        )
    tfs = blocks.run_tf(lo, hi)
    df = int(tfs.size)
    if df > k > 0:
        kth = float(np.partition(tfs, df - k)[df - k])
        theta = kth * wp
        maxtf = np.asarray(blocks.block_maxtf[lo:hi], dtype=np.float64)
        keep_mask = maxtf * wp >= theta
        kept = np.flatnonzero(keep_mask) + lo
    else:
        theta = 0.0
        kept = np.arange(lo, hi, dtype=np.int64)
    rows_parts: list[np.ndarray] = []
    tf_parts: list[np.ndarray] = []
    scanned = 0
    breaks = np.flatnonzero(np.diff(kept) > 1) + 1
    for seg in np.split(kept, breaks):
        j0, j1 = int(seg[0]), int(seg[-1]) + 1
        rows_parts.append(blocks.run_rows(j0, j1))
        tf_parts.append(blocks.run_tf(j0, j1))
        scanned += int(
            blocks.block_offsets[j1] - blocks.block_offsets[j0]
        )
    rows_k = np.concatenate(rows_parts)
    sc = np.concatenate(tf_parts) * wp
    cidx = np.flatnonzero(sc >= theta if theta > 0.0 else sc > 0)
    rows_c = rows_k[cidx]
    sc_c = sc[cidx]
    sel = topk_score_row(sc_c, rows_c, k)
    return rows_c[sel], sc_c[sel], scanned, nb - int(kept.size)


def blockmax_search(
    blocks: BlockPostings,
    term_rows: list[int],
    icf: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Exact top-k tf·icf search with block-level early termination.

    Returns ``(local rows, scores, postings decoded, blocks skipped)``
    where the rows/scores are bit-identical -- values *and* tie order --
    to exhaustive ``accumulate_tficf`` + stable ``topk_desc`` + the
    positive-score filter.

    The kernel prunes only *candidate generation*; every survivor is
    rescored from scratch with the identical in-query-term-order float
    accumulation, so determinism never rests on the pruning math.
    Phase A walks terms in descending max-contribution order,
    accumulating partial scores per block while maintaining a running
    k-th-partial-score threshold; a block whose upper bound
    (``icf·block_maxtf`` plus the unprocessed-term remainder) cannot
    reach the threshold is skipped without decoding -- its bound is
    banked in a per-row ``slack`` array so no already-touched document
    can be lost.  All bound comparisons are inflated/deflated by a
    conservative float-error margin, so a pruning decision can only
    ever *keep* a document that exact arithmetic would drop, never the
    reverse.  Phase B selects survivors whose optimistic bound
    (partial + slack + remainder) reaches the threshold; phase C
    rescores them exactly; phase D applies the reference
    ``(-score, row)`` selection.
    """
    n_docs = blocks.n_docs
    positions = [int(r) for r in term_rows]
    n_pos = len(positions)
    icf = np.asarray(icf, dtype=np.float64)
    w = np.array([float(icf[r]) for r in positions], dtype=np.float64)
    ranges = [blocks.term_block_range(r) for r in positions]

    if n_pos == 1:
        lo, hi = ranges[0]
        return _single_term_search(blocks, lo, hi, float(w[0]), k)

    relevant: set[int] = set()
    for lo, hi in ranges:
        relevant.update(range(lo, hi))

    ub = np.zeros(n_pos, dtype=np.float64)
    for p, (lo, hi) in enumerate(ranges):
        if hi > lo and w[p] > 0.0:
            ub[p] = w[p] * float(blocks.block_maxtf[lo:hi].max())

    order = np.lexsort((np.arange(n_pos), -ub))
    ub_sorted = ub[order]
    # suffix[i] = upper bound on everything at sorted position >= i
    suffix = np.zeros(n_pos + 1, dtype=np.float64)
    if n_pos:
        suffix[:n_pos] = np.cumsum(ub_sorted[::-1])[::-1]
    # conservative float margin: partial sums have at most ~n_pos
    # roundings, so a 4·(n_pos+2)·ulp relative band strictly separates
    # "provably below threshold" from "possibly top-k"
    eps = 4.0 * (n_pos + 2) * 2.0**-52
    inflate = 1.0 + eps
    deflate = 1.0 - 2.0 * eps

    acc = np.zeros(n_docs, dtype=np.float64)
    slack_diff: Optional[np.ndarray] = None
    decoded: set[int] = set()
    firsts = blocks.block_firsts
    theta = 0.0
    rem = 0.0
    first_processed = True
    for i in range(n_pos):
        if theta > 0.0 and suffix[i] * inflate < theta * deflate:
            rem = float(suffix[i])
            break
        p = int(order[i])
        lo, hi = ranges[p]
        wp = float(w[p])
        if hi <= lo or wp <= 0.0:
            continue
        after = float(suffix[i + 1])
        if theta > 0.0:
            ubj = wp * np.asarray(
                blocks.block_maxtf[lo:hi], dtype=np.float64
            )
            keep_mask = (ubj + after) * inflate >= theta * deflate
            all_kept = bool(keep_mask.all())
        else:
            all_kept = True
        if all_kept:
            acc[blocks.run_rows(lo, hi)] += blocks.run_tf(lo, hi) * wp
            decoded.update(range(lo, hi))
        else:
            skip = np.flatnonzero(~keep_mask) + lo
            # bank each skipped block's bound over its row span: its
            # first row is readable without decode, and its rows end
            # before the next block's first row (same term run)
            if slack_diff is None:
                slack_diff = np.zeros(n_docs + 1, dtype=np.float64)
            r0 = firsts[skip]
            nxt = skip + 1
            r1 = np.where(
                nxt < hi, firsts[np.minimum(nxt, hi - 1)], n_docs
            )
            np.add.at(slack_diff, r0, ubj[skip - lo])
            np.add.at(slack_diff, r1, -ubj[skip - lo])
            kept = np.flatnonzero(keep_mask) + lo
            if kept.size:
                # decode contiguous kept runs: one segmented cumsum each
                breaks = np.flatnonzero(np.diff(kept) > 1) + 1
                for seg in np.split(kept, breaks):
                    j0, j1 = int(seg[0]), int(seg[-1]) + 1
                    acc[blocks.run_rows(j0, j1)] += (
                        blocks.run_tf(j0, j1) * wp
                    )
                    decoded.update(range(j0, j1))
        # a stale (smaller) theta is still a valid lower bound on the
        # k-th final score, so only pay for a tighter one when a future
        # position could actually use it
        if 0 < k < n_docs and i + 1 < n_pos and ub_sorted[i + 1] > 0.0:
            if first_processed:
                # acc is exactly this one term's contributions, which
                # are nonzero only on its postings: partition the run
                # (cheap) instead of the dense score array
                contrib = blocks.run_tf(lo, hi) * wp
                if contrib.size >= k:
                    theta = float(
                        np.partition(contrib, contrib.size - k)[
                            contrib.size - k
                        ]
                    )
            else:
                theta = float(
                    np.partition(acc, n_docs - k)[n_docs - k]
                )
        first_processed = False

    if theta > 0.0:
        bound = acc if slack_diff is None else (
            acc + np.cumsum(slack_diff[:-1])
        )
        cand = np.flatnonzero(
            (bound + rem) * inflate >= theta * deflate
        )
    else:
        cand = np.flatnonzero(acc > 0)

    # adaptive bail: a dense candidate set means pruning bought
    # nothing, and per-candidate rescoring would cost more than the
    # straight dense accumulation -- which is trivially exact because
    # it IS the exhaustive reference computation (in query-term order)
    n_occ = int(
        sum(
            int(blocks.block_offsets[hi] - blocks.block_offsets[lo])
            for lo, hi in ranges
        )
    )
    if cand.size and cand.size * n_pos * 4 > n_occ:
        acc2 = np.zeros(n_docs, dtype=np.float64)
        for p in range(n_pos):
            lo, hi = ranges[p]
            if hi <= lo:
                continue
            acc2[blocks.run_rows(lo, hi)] += (
                blocks.run_tf(lo, hi) * float(w[p])
            )
        take = min(k, n_docs)
        # top-take by (-score, row) without a dense stable argsort:
        # every row tying the take-th score survives the partition
        # threshold, so the candidate lexsort reproduces the reference
        # tie order exactly
        if 0 < take < n_docs:
            kth = float(
                np.partition(acc2, n_docs - take)[n_docs - take]
            )
        else:
            kth = 0.0
        cand2 = np.flatnonzero(acc2 >= kth if kth > 0.0 else acc2 > 0)
        sc2 = acc2[cand2]
        sel2 = topk_score_row(sc2, cand2, take)
        sel2 = sel2[sc2[sel2] > 0]
        return cand2[sel2], sc2[sel2], n_occ, 0

    # exact rescore of survivors, in original query-term order.  Per
    # candidate and term occurrence this performs exactly one
    # ``score += tf * w`` add, so the floats match the exhaustive
    # accumulation bit-for-bit regardless of which decode path serves
    # the lookup.
    scores = np.zeros(cand.size, dtype=np.float64)
    if cand.size:
        for p in range(n_pos):
            lo, hi = ranges[p]
            wp = float(w[p])
            if hi <= lo or wp == 0.0:
                continue
            # block index of each candidate within this term's run
            bidx = (
                lo
                + np.searchsorted(firsts[lo:hi], cand, side="right")
                - 1
            )
            valid = bidx >= lo
            if not valid.any():
                continue
            # decode demand is charged per candidate-containing block
            # (pure per-query accounting, independent of cache state)
            decoded.update(np.unique(bidx[valid]).tolist())
            full = blocks.cached_rows(lo, hi)
            if full is not None:
                # whole run already decoded: one lookup pass
                pos = np.searchsorted(full, cand)
                clip = np.minimum(pos, full.size - 1)
                hit = full[clip] == cand
                if hit.any():
                    scores[hit] += (
                        blocks.run_tf(lo, hi)[pos[hit]] * wp
                    )
                continue
            cidx = np.flatnonzero(valid)
            vblocks = bidx[cidx]
            uniq, starts = np.unique(vblocks, return_index=True)
            bounds = np.append(starts, vblocks.size)
            for m, j in enumerate(uniq.tolist()):
                csel = cidx[bounds[m] : bounds[m + 1]]
                sub = cand[csel]
                rows_j = blocks.block_rows(j)
                pos = np.searchsorted(rows_j, sub)
                clip = np.minimum(pos, rows_j.size - 1)
                hit = rows_j[clip] == sub
                if hit.any():
                    scores[csel[hit]] += (
                        blocks.block_tf(j)[pos[hit]] * wp
                    )

    keep = scores > 0
    cand_pos = cand[keep]
    sc_pos = scores[keep]
    sel = topk_score_row(sc_pos, cand_pos, k)
    if decoded:
        ja = np.fromiter(decoded, dtype=np.int64, count=len(decoded))
        scanned = int(
            (blocks.block_offsets[ja + 1] - blocks.block_offsets[ja])
            .sum()
        )
    else:
        scanned = 0
    skipped = len(relevant) - len(decoded)
    return cand_pos[sel], sc_pos[sel], scanned, skipped


# ----------------------------------------------------------------------
# broker-side merges
# ----------------------------------------------------------------------
def merge_desc(
    per_shard: list[list[Candidate]], k: int
) -> list[Candidate]:
    """Global top-k by (score desc, global row asc).

    Equivalent to a stable global argsort on descending score: shard
    lists are already row-ordered within equal scores, so selecting
    the concatenation through the shared ``(-score, row)`` helper
    reproduces the reference order.
    """
    merged = [c for cands in per_shard for c in cands]
    if not merged:
        return []
    sel = topk_score_row(
        np.array([c.score for c in merged], dtype=np.float64),
        np.array([c.row for c in merged], dtype=np.int64),
        k,
    )
    return [merged[int(i)] for i in sel]


def merge_asc(
    per_shard: list[list[Candidate]], k: int
) -> list[Candidate]:
    """Global bottom-k by (score asc, global row asc)."""
    merged = [c for cands in per_shard for c in cands]
    merged.sort(key=lambda c: (c.score, c.row))
    return merged[:k]


def topk_int_score_row(
    scores: np.ndarray, rows: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the top-``k`` entries by ``(-score, row)``, exact
    over int64 scores.

    The integer twin of :func:`repro.index.termindex.topk_score_row`:
    window-analytics scores are exact int64 tf sums, and selecting on
    the integers directly keeps the order exact at any magnitude
    (no float64 conversion anywhere).
    """
    scores = np.asarray(scores, dtype=np.int64)
    rows = np.asarray(rows, dtype=np.int64)
    take = rows.size if k < 0 else min(k, rows.size)
    return np.lexsort((rows, -scores))[:take]


def hits_payload(cands: list[Candidate]) -> list[dict]:
    """JSON-native hit list of a merged candidate ranking."""
    return [
        {"doc": c.doc_id, "score": c.score, "cluster": c.cluster}
        for c in cands
    ]


def canonical_response(response: dict) -> bytes:
    """Canonical serialized form of one response.

    Sorted keys, minimal separators, UTF-8: two responses are
    bit-identical iff these bytes are equal (the determinism tests'
    comparison oracle).
    """
    return json.dumps(
        response, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
