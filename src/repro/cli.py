"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   write a synthetic corpus to a ``.jsonl`` source file
``run``        process a corpus (serial or simulated-parallel engine)
               and export results + ThemeView
``analyze``    interactive queries against a saved result
``figures``    regenerate the paper's evaluation figures
``bench-wallclock``  measure the simulator's real runtime cost,
               write ``BENCH_runtime.json``, fail on regression
``metrics-report``  print the P x P communication matrix, per-stage
               load-imbalance factors, and hashmap RPC locality from
               a saved result (or a fresh downscaled run)
``serve-build``  shard a saved result into an on-disk serving store
``serve-query``  answer one query from a sharded store via the broker
``serve-bench``  replay a seeded closed-loop workload (plus a crash
               fault plan) through the broker, write
               ``BENCH_serving.json``, fail on drift
``ingest-feed``  append seeded document batches to an ingest journal
``ingest-publish``  replay a journal against a store: project each
               batch into a delta segment and publish generations
``ingest-compact``  fold a store's delta segments into base shards
``ingest-status``  verify a store and print its generation state
``bench-ingest``  benchmark live ingest (freshness lag, churn-time
               latency, crash degradation), write ``BENCH_ingest.json``

Examples
--------
::

    python -m repro generate --dataset pubmed --bytes 300000 --out corpus.jsonl
    python -m repro run --corpus corpus.jsonl --nprocs 8 --out results/
    python -m repro analyze --results results/result.npz --query "some terms"
    python -m repro figures --out figures/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parallel IN-SPIRE-style text engine "
            "(IPPS 2007 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic corpus")
    g.add_argument(
        "--dataset",
        choices=("pubmed", "trec", "newswire"),
        default="pubmed",
    )
    g.add_argument("--bytes", type=int, default=250_000)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--themes", type=int, default=None)
    g.add_argument(
        "--represented",
        type=float,
        default=None,
        help="real-world byte size this corpus stands for",
    )
    g.add_argument(
        "--facet-sources",
        type=int,
        default=0,
        help=(
            "stamp documents with time/source facets over this many "
            "source regions (0 = unstamped, byte-identical output)"
        ),
    )
    g.add_argument(
        "--facet-span",
        type=float,
        default=600.0,
        help="stamp span in virtual seconds (with --facet-sources)",
    )
    g.add_argument("--out", type=Path, required=True)

    r = sub.add_parser("run", help="run the text engine on a corpus")
    r.add_argument("--corpus", type=Path, required=True)
    r.add_argument(
        "-P",
        "--nprocs",
        type=int,
        default=0,
        help="simulated processors (0 = serial engine)",
    )
    r.add_argument(
        "--backend",
        choices=("sim", "mp"),
        default="sim",
        help=(
            "execution backend for parallel runs: 'sim' (single-"
            "process virtual-time simulator) or 'mp' (one OS process "
            "per rank; bit-identical results)"
        ),
    )
    r.add_argument("--clusters", type=int, default=10)
    r.add_argument("--major-terms", type=int, default=400)
    r.add_argument(
        "--cluster-method",
        choices=("kmeans", "single", "complete", "average"),
        default="kmeans",
    )
    r.add_argument("--seed", type=int, default=0)
    r.add_argument(
        "--fault-plan",
        type=Path,
        default=None,
        help="JSON fault plan to replay (parallel runs only)",
    )
    r.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="directory for stage checkpoints during faulty runs",
    )
    r.add_argument("--out", type=Path, required=True)

    a = sub.add_parser("analyze", help="query a saved engine result")
    a.add_argument("--results", type=Path, required=True)
    a.add_argument("--query", type=str, default=None, help="query terms")
    a.add_argument(
        "--similar", type=int, default=None, help="doc id to match"
    )
    a.add_argument(
        "--cluster", type=int, default=None, help="cluster to summarize"
    )
    a.add_argument("--top", type=int, default=10)

    f = sub.add_parser(
        "figures", help="reproduce the paper's evaluation figures"
    )
    f.add_argument("--downscale", type=float, default=10_000.0)
    f.add_argument("--procs", type=str, default="4,8,16,32")
    f.add_argument("--seed", type=int, default=7)
    f.add_argument("--out", type=Path, default=Path("figures"))
    f.add_argument(
        "--verify",
        action="store_true",
        help="also run the shape-verification checks",
    )

    b = sub.add_parser(
        "bench-wallclock",
        help="measure real runtime cost and check for regressions",
    )
    b.add_argument(
        "--procs",
        type=str,
        default="1,4,8,16",
        help="comma-separated processor counts",
    )
    b.add_argument("--repeats", type=int, default=5)
    b.add_argument(
        "--dataset", choices=("pubmed", "trec"), default="pubmed"
    )
    b.add_argument(
        "--backends",
        type=str,
        default="sim,mp",
        help=(
            "comma-separated execution backends to measure "
            "(subset of: sim, mp)"
        ),
    )
    b.add_argument("--downscale", type=float, default=10_000.0)
    b.add_argument("--seed", type=int, default=7)
    b.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_runtime.json"),
        help="report path (doubles as the committed baseline)",
    )
    b.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report to compare against (default: --out)",
    )
    b.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="fail when end-to-end time regresses beyond this fraction",
    )
    b.add_argument(
        "--update-baseline",
        action="store_true",
        help="skip the comparison and rewrite the baseline file",
    )

    m = sub.add_parser(
        "metrics-report",
        help="report runtime metrics (comm matrix, imbalance, locality)",
    )
    m.add_argument(
        "--results",
        type=Path,
        default=None,
        help=(
            "saved result.npz to report on (default: run the engine "
            "on a freshly generated downscaled corpus)"
        ),
    )
    m.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        help=(
            "render a saved metrics snapshot JSON instead (e.g. the "
            "workbench-serve --metrics-out file)"
        ),
    )
    m.add_argument(
        "-P",
        "--nprocs",
        type=int,
        default=8,
        help="simulated processors for the default run",
    )
    m.add_argument(
        "--backend",
        choices=("sim", "mp"),
        default="sim",
        help="execution backend for the default run",
    )
    m.add_argument(
        "--dataset", choices=("pubmed", "trec"), default="pubmed"
    )
    m.add_argument("--downscale", type=float, default=10_000.0)
    m.add_argument("--seed", type=int, default=7)
    m.add_argument(
        "--format",
        choices=("text", "prometheus"),
        default="text",
        help="text report or Prometheus exposition format",
    )
    m.add_argument(
        "--json",
        type=Path,
        default=None,
        help="also write the raw snapshot as canonical JSON",
    )

    sb = sub.add_parser(
        "serve-build",
        help="shard a saved result into an on-disk serving store",
    )
    sb.add_argument("--results", type=Path, required=True)
    sb.add_argument(
        "--corpus",
        type=Path,
        default=None,
        help=(
            "source corpus to invert for term search postings "
            "(omit to serve signature/cluster queries only)"
        ),
    )
    sb.add_argument("--shards", type=int, default=4)
    sb.add_argument(
        "--replicas",
        type=int,
        default=1,
        help=(
            "default replication factor recorded in the manifest "
            "(the replicated tier's serve_replicated honors it)"
        ),
    )
    sb.add_argument("--out", type=Path, required=True)

    sq = sub.add_parser(
        "serve-query",
        help="answer one query from a sharded store via the broker",
    )
    sq.add_argument("--store", type=Path, required=True)
    sq.add_argument(
        "--search", type=str, default=None, help="ranked term search"
    )
    sq.add_argument(
        "--query", type=str, default=None, help="pseudo-signature query"
    )
    sq.add_argument(
        "--similar", type=int, default=None, help="doc id to match"
    )
    sq.add_argument(
        "--cluster", type=int, default=None, help="cluster to summarize"
    )
    sq.add_argument(
        "--region",
        type=str,
        default=None,
        metavar="X,Y,RADIUS",
        help="landscape region to describe",
    )
    sq.add_argument("--top", type=int, default=10)
    sq.add_argument(
        "--exhaustive",
        action="store_true",
        help=(
            "disable block-max pruned search (answers are "
            "bit-identical either way; this is the A/B knob)"
        ),
    )

    fq = sub.add_parser(
        "facet-query",
        help="answer one window query from a stamped store",
    )
    fq.add_argument("--store", type=Path, required=True)
    fq.add_argument(
        "--kind",
        choices=("counts", "terms", "emerging"),
        required=True,
        help=(
            "counts = per-source document counts; terms = exact "
            "top terms by tf; emerging = terms rising vs. the "
            "preceding window"
        ),
    )
    fq.add_argument(
        "--t0",
        type=float,
        default=None,
        help="window start (default: store stamp range start)",
    )
    fq.add_argument(
        "--t1",
        type=float,
        default=None,
        help="window end, exclusive (default: store stamp range end)",
    )
    fq.add_argument(
        "--source",
        type=int,
        default=-1,
        help="restrict to one source region (-1 = all)",
    )
    fq.add_argument("--top", type=int, default=10)

    ts = sub.add_parser(
        "themeview-slices",
        help="time-sliced ThemeView sequence from a stamped store",
    )
    ts.add_argument("--store", type=Path, required=True)
    ts.add_argument("--slices", type=int, default=4)
    ts.add_argument("--grid", type=int, default=48)
    ts.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSON payload here instead of stdout",
    )

    sv = sub.add_parser(
        "serve-bench",
        help="benchmark the serving layer, write BENCH_serving.json",
    )
    sv.add_argument(
        "--shards",
        type=str,
        default="1,2,4,8",
        help="comma-separated shard counts",
    )
    sv.add_argument("--corpus-bytes", type=int, default=120_000)
    sv.add_argument("--corpus-seed", type=int, default=4)
    sv.add_argument("--workload-seed", type=int, default=7)
    sv.add_argument("--clients", type=int, default=4)
    sv.add_argument("--queries-per-client", type=int, default=30)
    sv.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_serving.json"),
        help="report path (doubles as the committed baseline)",
    )
    sv.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report to compare against (default: --out)",
    )
    sv.add_argument(
        "--replica-matrix",
        type=str,
        default=None,
        metavar="S:W:B:R:C:Q[,...]",
        help=(
            "replicated-tier study rows as "
            "shards:workers:brokers:replicas:clients:queries-per-client"
            " (comma-separated; default runs the built-in 64-rank"
            " matrix)"
        ),
    )
    sv.add_argument(
        "--update-baseline",
        action="store_true",
        help="skip the comparison and rewrite the baseline file",
    )
    sv.add_argument(
        "--pruning-corpus-bytes",
        type=int,
        default=40_000_000,
        help=(
            "corpus size of the term-search-heavy pruning study "
            "(larger than the virtual-cost corpus so block-max "
            "skipping has room to work; 0 skips the study)"
        ),
    )
    sv.add_argument(
        "--batch-sizes",
        type=str,
        default="1,4,16",
        help="broker batch sizes B for the pruning study",
    )

    wb = sub.add_parser(
        "workbench-serve",
        help="replay a seeded analyst workload through the workbench",
    )
    wb.add_argument("--store", type=Path, required=True)
    wb.add_argument("--tenants", type=int, default=2)
    wb.add_argument("--sessions-per-tenant", type=int, default=2)
    wb.add_argument("--ops-per-session", type=int, default=8)
    wb.add_argument("--seed", type=int, default=0)
    wb.add_argument(
        "--backend",
        choices=("sim", "mp"),
        default="sim",
        help="execution backend (answers are byte-identical)",
    )
    wb.add_argument("--max-sessions", type=int, default=4)
    wb.add_argument("--max-sets", type=int, default=16)
    wb.add_argument("--max-derived-bytes", type=int, default=1 << 15)
    wb.add_argument(
        "--session-ttl", type=float, default=120.0,
        help="virtual seconds of idleness before eviction",
    )
    wb.add_argument(
        "--transcript",
        type=Path,
        default=None,
        help="write canonical response lines here (byte-compare anchor)",
    )
    wb.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write the metrics snapshot JSON here (metrics-report input)",
    )

    wc = sub.add_parser(
        "workbench-session",
        help="run one scripted analyst session and print its responses",
    )
    wc.add_argument("--store", type=Path, required=True)
    wc.add_argument(
        "--script",
        type=Path,
        default=None,
        help=(
            "JSON list of ops: [{\"verb\": \"search\", \"name\": "
            "\"a\", \"terms\": [\"gene\"], ...}, ...] (open/close "
            "are implied)"
        ),
    )
    wc.add_argument(
        "--search",
        type=str,
        default=None,
        help="anchor search terms for the default demo session",
    )
    wc.add_argument(
        "--refine",
        type=str,
        default=None,
        help="refine the anchor set with these terms",
    )
    wc.add_argument(
        "--derive",
        choices=("keyphrases", "cooccur", "relations"),
        default="keyphrases",
        help="derived artifact to compute on the last set",
    )
    wc.add_argument("--top", type=int, default=10, help="hits per set")
    wc.add_argument("--n", type=int, default=10, help="derive terms")
    wc.add_argument("--tenant", type=int, default=0)

    jf = sub.add_parser(
        "ingest-feed",
        help="append seeded document batches to an ingest journal",
    )
    jf.add_argument("--journal", type=Path, required=True)
    jf.add_argument(
        "--dataset",
        choices=("pubmed", "trec", "newswire"),
        default="pubmed",
    )
    jf.add_argument("--batches", type=int, default=4)
    jf.add_argument("--batch-docs", type=int, default=40)
    jf.add_argument("--seed", type=int, default=0)
    jf.add_argument(
        "--themes",
        type=int,
        default=4,
        help="theme count (match the base corpus so vocab overlaps)",
    )
    jf.add_argument(
        "--skip-docs",
        type=int,
        default=0,
        help=(
            "skip this many documents of the seeded stream (continue "
            "past where the static corpus stopped)"
        ),
    )
    jf.add_argument(
        "--start-doc-id",
        type=int,
        default=0,
        help="first doc_id to assign (continue after the store)",
    )
    jf.add_argument("--mean-interarrival", type=float, default=2.0)
    jf.add_argument(
        "--facet-sources",
        type=int,
        default=0,
        help=(
            "stamp feed batches with this many source regions "
            "(0 = unstamped; match the base store)"
        ),
    )

    ip = sub.add_parser(
        "ingest-publish",
        help="replay a journal against a store, publishing generations",
    )
    ip.add_argument("--store", type=Path, required=True)
    ip.add_argument(
        "--results",
        type=Path,
        required=True,
        help="saved result.npz holding the frozen projection model",
    )
    ip.add_argument("--journal", type=Path, required=True)
    ip.add_argument("--compact-max-deltas", type=int, default=4)
    ip.add_argument(
        "--compact-max-bytes-fraction",
        type=float,
        default=0.5,
        help="compact once deltas exceed this fraction of base bytes",
    )
    ip.add_argument("--refresh-null-fraction", type=float, default=0.25)
    ip.add_argument("--refresh-min-docs", type=int, default=1)

    ic = sub.add_parser(
        "ingest-compact",
        help="fold a store's delta segments into base shards",
    )
    ic.add_argument("--store", type=Path, required=True)

    st = sub.add_parser(
        "ingest-status",
        help="verify a store and print its generation state",
    )
    st.add_argument("--store", type=Path, required=True)

    bi = sub.add_parser(
        "bench-ingest",
        help="benchmark live ingest, write BENCH_ingest.json",
    )
    bi.add_argument(
        "--shards",
        type=str,
        default="1,2,4",
        help="comma-separated shard counts",
    )
    bi.add_argument("--corpus-bytes", type=int, default=120_000)
    bi.add_argument("--corpus-seed", type=int, default=4)
    bi.add_argument("--feed-seed", type=int, default=4)
    bi.add_argument("--workload-seed", type=int, default=7)
    bi.add_argument("--clients", type=int, default=3)
    bi.add_argument("--queries-per-client", type=int, default=20)
    bi.add_argument("--batches", type=int, default=4)
    bi.add_argument("--batch-docs", type=int, default=10)
    bi.add_argument("--compact-max-deltas", type=int, default=2)
    bi.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_ingest.json"),
        help="report path (doubles as the committed baseline)",
    )
    bi.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline report to compare against (default: --out)",
    )
    bi.add_argument(
        "--update-baseline",
        action="store_true",
        help="skip the comparison and rewrite the baseline file",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import generate_pubmed, generate_trec
    from repro.text import write_corpus

    kwargs = {"seed": args.seed, "represented_bytes": args.represented}
    if args.themes is not None:
        kwargs["n_themes"] = args.themes
    if args.facet_sources:
        from repro.facets import FacetSpec

        kwargs["facets"] = FacetSpec(
            n_sources=args.facet_sources,
            span_s=args.facet_span,
            seed=args.seed,
        )
    from repro.datasets import generate_newswire

    gens = {
        "pubmed": generate_pubmed,
        "trec": generate_trec,
        "newswire": generate_newswire,
    }
    corpus = gens[args.dataset](args.bytes, **kwargs)
    nbytes = write_corpus(corpus, args.out)
    print(
        f"wrote {len(corpus)} documents ({nbytes:,} bytes) to {args.out}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.engine import (
        EngineConfig,
        ParallelTextEngine,
        SerialTextEngine,
        save_result,
    )
    from repro.text import read_source
    from repro.viz import (
        build_themeview,
        export_json,
        labels_from_result,
        render_ascii,
        write_pgm,
        write_svg,
    )

    corpus = read_source(args.corpus)
    fault_plan = None
    if args.fault_plan is not None:
        from repro.runtime import FaultPlan

        fault_plan = FaultPlan.from_json(args.fault_plan.read_text())
        print(f"replaying fault plan from {args.fault_plan}")
    config = EngineConfig(
        n_major_terms=args.major_terms,
        n_clusters=args.clusters,
        cluster_method=args.cluster_method,
        seed=args.seed,
        fault_plan=fault_plan,
        checkpoint_dir=(
            str(args.checkpoint_dir)
            if args.checkpoint_dir is not None
            else None
        ),
        backend=args.backend,
    )
    if args.nprocs > 0:
        kind = (
            "OS processes" if args.backend == "mp" else "simulated procs"
        )
        print(f"running parallel engine on {args.nprocs} {kind}")
        result = ParallelTextEngine(args.nprocs, config=config).run(corpus)
    else:
        print("running serial engine")
        result = SerialTextEngine(config).run(corpus)
    print(result.summary())

    out = args.out
    out.mkdir(parents=True, exist_ok=True)
    save_result(result, out / "result.npz")
    view = build_themeview(
        result.coords,
        result.assignments,
        cluster_labels=labels_from_result(result),
    )
    write_pgm(view, out / "themeview.pgm")
    export_json(view, out / "themeview.json")
    write_svg(
        result.coords,
        out / "themeview.svg",
        assignments=result.assignments,
        view=view,
    )
    (out / "themeview.txt").write_text(render_ascii(view) + "\n")
    with (out / "coordinates.csv").open("w") as fh:
        fh.write("doc_id,x,y,cluster\n")
        for doc_id, coord, c in zip(
            result.doc_ids, result.coords, result.assignments
        ):
            fh.write(
                f"{doc_id},{coord[0]:.6f},{coord[1]:.6f},{c}\n"
            )
    print(f"results written to {out}/")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import AnalysisSession
    from repro.engine import load_result

    result = load_result(args.results)
    session = AnalysisSession(result)
    did_something = False
    if args.query:
        did_something = True
        hits = session.query(args.query.split(), k=args.top)
        print(f"query {args.query!r}:")
        for h in hits:
            print(
                f"  doc {h.doc_id:>6}  score={h.score:.4f}  "
                f"cluster={h.cluster}"
            )
        if not hits:
            print("  (no hits: terms outside the major-term model)")
    if args.similar is not None:
        did_something = True
        hits = session.similar_documents(args.similar, k=args.top)
        print(f"documents similar to {args.similar}:")
        for h in hits:
            print(
                f"  doc {h.doc_id:>6}  cosine={h.score:.4f}  "
                f"cluster={h.cluster}"
            )
    if args.cluster is not None:
        did_something = True
        s = session.cluster_summary(args.cluster)
        print(
            f"cluster {s.cluster}: {s.size} docs; "
            f"terms: {' '.join(s.top_terms)}; "
            f"representatives: {s.representative_docs}"
        )
    if not did_something:
        print(result.summary())
        print("topics:", " ".join(result.topic_term_strings[:12]))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import (
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        render_checks,
        run_all_sweeps,
        verify_shapes,
    )

    procs = tuple(int(x) for x in args.procs.split(","))
    args.out.mkdir(parents=True, exist_ok=True)
    sweeps = run_all_sweeps(
        downscale=args.downscale,
        procs=procs,
        seed=args.seed,
        progress=lambda msg: print("  " + msg),
    )
    fig9 = figure9(seed=args.seed)
    reports = [
        figure5(sweeps),
        figure6(sweeps),
        figure7(sweeps),
        figure8(sweeps),
        fig9,
    ]
    for rep in reports:
        rep.write(args.out)
        print()
        print(rep.text)
    print(f"\nfigure tables written to {args.out}/")
    if args.verify:
        checks = verify_shapes(sweeps, fig9)
        text = render_checks(checks)
        (args.out / "verification.txt").write_text(text + "\n")
        print()
        print(text)
        if not all(c.passed for c in checks):
            return 1
    return 0


def _cmd_bench_wallclock(args: argparse.Namespace) -> int:
    from repro.bench.wallclock import run_bench

    procs = tuple(
        int(tok) for tok in args.procs.split(",") if tok.strip()
    )
    backends = tuple(
        tok.strip() for tok in args.backends.split(",") if tok.strip()
    )
    bad = [b for b in backends if b not in ("sim", "mp")]
    if bad:
        print(f"error: unknown backend(s): {bad}", file=sys.stderr)
        return 2
    return run_bench(
        out_path=args.out,
        baseline_path=args.baseline,
        procs=procs,
        repeats=args.repeats,
        dataset=args.dataset,
        downscale=args.downscale,
        seed=args.seed,
        threshold=args.threshold,
        update_baseline=args.update_baseline,
        backends=backends,
    )


def _cmd_metrics_report(args: argparse.Namespace) -> int:
    import json

    from repro.runtime.metrics import (
        render_report,
        to_prometheus,
        validate_snapshot,
    )

    if args.snapshot is not None:
        try:
            snap = json.loads(args.snapshot.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"error: {args.snapshot} is not a metrics snapshot "
                f"({exc})",
                file=sys.stderr,
            )
            return 1
    elif args.results is not None:
        import pickle
        import zipfile

        from repro.engine import load_result

        try:
            result = load_result(args.results)
        except (
            OSError,
            KeyError,
            ValueError,
            zipfile.BadZipFile,
            json.JSONDecodeError,
            pickle.UnpicklingError,
        ) as exc:
            print(
                f"error: {args.results} is not a saved engine result "
                f"({exc})",
                file=sys.stderr,
            )
            return 1
        snap = result.metrics
        if snap is None:
            print(
                f"{args.results} predates the metrics layer "
                "(no metrics block saved)",
                file=sys.stderr,
            )
            return 1
    else:
        from repro.bench.harness import (
            default_figure_config,
            make_workload,
        )
        from repro.engine import ParallelTextEngine
        from repro.runtime import MachineSpec

        workload = make_workload(
            args.dataset,
            args.dataset,
            2.75e9,
            downscale=args.downscale,
            seed=args.seed,
        )
        print(
            f"running {args.dataset} ({len(workload.corpus)} docs, "
            f"downscale {args.downscale:g}) on {args.nprocs} "
            f"simulated procs [{args.backend} backend]",
            file=sys.stderr,
        )
        import dataclasses

        engine = ParallelTextEngine(
            args.nprocs,
            machine=MachineSpec(),
            config=dataclasses.replace(
                default_figure_config(), backend=args.backend
            ),
        )
        snap = engine.run(workload.corpus).metrics
    validate_snapshot(snap)
    if args.format == "prometheus":
        print(to_prometheus(snap), end="")
    else:
        print(render_report(snap))
    if args.json is not None:
        args.json.write_text(
            json.dumps(snap, sort_keys=True, indent=2) + "\n"
        )
        print(f"snapshot written to {args.json}", file=sys.stderr)
    return 0


def _cmd_serve_build(args: argparse.Namespace) -> int:
    from repro.engine import load_result
    from repro.serve import build_shards

    result = load_result(args.results)
    corpus = None
    facets = None
    if args.corpus is not None:
        from repro.facets import extract_facets
        from repro.text import read_source

        corpus = read_source(args.corpus)
        facets = extract_facets(corpus)
    manifest = build_shards(
        result,
        args.out,
        args.shards,
        corpus=corpus,
        replication=args.replicas,
        facets=facets,
    )
    total = sum(s.nbytes for s in manifest.shards)
    print(
        f"built {manifest.nshards}-shard store for "
        f"{manifest.n_docs} documents ({total:,} shard bytes, "
        f"replication {manifest.replication}) at {args.out}/"
    )
    if corpus is None:
        print(
            "note: no corpus given, term search disabled in this store"
        )
    if manifest.facets is not None:
        fac = manifest.facets
        print(
            f"stamped store: {fac.n_sources} sources, stamps "
            f"[{fac.stamp_lo:.1f}, {fac.stamp_hi:.1f}]s"
        )
    return 0


def _cmd_serve_query(args: argparse.Namespace) -> int:
    import json

    from repro.serve import (
        BrokerConfig,
        Query,
        ShardFormatError,
        query_store,
    )

    query = None
    if args.search is not None:
        query = Query(
            kind="search", terms=tuple(args.search.split()), k=args.top
        )
    elif args.query is not None:
        query = Query(
            kind="query", terms=tuple(args.query.split()), k=args.top
        )
    elif args.similar is not None:
        query = Query(kind="similar", doc_id=args.similar, k=args.top)
    elif args.cluster is not None:
        query = Query(kind="cluster", cluster=args.cluster)
    elif args.region is not None:
        try:
            x, y, radius = (float(v) for v in args.region.split(","))
        except ValueError:
            print(
                f"error: --region wants X,Y,RADIUS, got {args.region!r}",
                file=sys.stderr,
            )
            return 1
        query = Query(kind="region", x=x, y=y, radius=radius)
    if query is None:
        print(
            "error: pass one of --search/--query/--similar/"
            "--cluster/--region",
            file=sys.stderr,
        )
        return 1
    try:
        response = query_store(
            args.store,
            query,
            config=BrokerConfig(pruned_search=not args.exhaustive),
        )
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_facet_query(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.facets import FacetsUnavailableError
    from repro.serve import Query, ShardFormatError, query_store
    from repro.serve.store import load_manifest

    try:
        manifest = load_manifest(args.store)
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if manifest.facets is None:
        exc = FacetsUnavailableError(
            str(args.store),
            "store is not stamped: no facet sections "
            "(rebuild from a stamped corpus)",
        )
        print(f"error: {exc}", file=sys.stderr)
        return 1
    fac = manifest.facets
    t0 = fac.stamp_lo if args.t0 is None else args.t0
    # the default upper bound nudges past the last stamp so the
    # half-open window convention never drops the final document
    t1 = (
        np.nextafter(fac.stamp_hi, np.inf)
        if args.t1 is None
        else args.t1
    )
    if t1 <= t0:
        print(
            f"error: empty window [{t0}, {t1}): t1 must be > t0",
            file=sys.stderr,
        )
        return 1
    kind = {
        "counts": "facet_counts",
        "terms": "window_terms",
        "emerging": "emerging",
    }[args.kind]
    query = Query(
        kind=kind,
        t0=float(t0),
        t1=float(t1),
        source=args.source,
        n_terms=args.top,
    )
    try:
        response = query_store(args.store, query)
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0


def _cmd_themeview_slices(args: argparse.Namespace) -> int:
    import json

    from repro.facets import (
        FacetsUnavailableError,
        slices_payload,
        themeview_slices,
    )
    from repro.serve import ShardFormatError

    try:
        slices = themeview_slices(
            args.store, n_slices=args.slices, grid=args.grid
        )
    except (FacetsUnavailableError, ShardFormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    payload = slices_payload(slices)
    doc = json.dumps(payload, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.write_text(doc + "\n")
        occupied = sum(1 for s in payload if s["n_docs"])
        print(
            f"wrote {len(payload)} slices ({occupied} non-empty) "
            f"to {args.out}"
        )
    else:
        print(doc)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.bench.serving import ReplicaSpec, run_bench

    shards = tuple(
        int(tok) for tok in args.shards.split(",") if tok.strip()
    )
    replica_matrix = None
    if args.replica_matrix is not None:
        try:
            replica_matrix = tuple(
                ReplicaSpec.parse(tok)
                for tok in args.replica_matrix.split(",")
                if tok.strip()
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return run_bench(
        out_path=args.out,
        baseline_path=args.baseline,
        shards=shards,
        corpus_bytes=args.corpus_bytes,
        corpus_seed=args.corpus_seed,
        workload_seed=args.workload_seed,
        n_clients=args.clients,
        queries_per_client=args.queries_per_client,
        replica_matrix=replica_matrix,
        update_baseline=args.update_baseline,
        pruning_corpus_bytes=args.pruning_corpus_bytes,
        batch_sizes=tuple(
            int(tok) for tok in args.batch_sizes.split(",") if tok.strip()
        ),
    )


def _cmd_workbench_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ShardFormatError
    from repro.serve.query import canonical_response
    from repro.serve.workload import store_profile
    from repro.workbench import (
        WorkbenchConfig,
        generate_analyst_workload,
        serve_workbench,
    )

    config = WorkbenchConfig(
        max_sessions=args.max_sessions,
        max_sets=args.max_sets,
        max_derived_bytes=args.max_derived_bytes,
        session_ttl_s=args.session_ttl,
    )
    try:
        scripts = generate_analyst_workload(
            store_profile(args.store),
            n_tenants=args.tenants,
            sessions_per_tenant=args.sessions_per_tenant,
            ops_per_session=args.ops_per_session,
            seed=args.seed,
        )
        report = serve_workbench(
            str(args.store),
            scripts,
            config=config,
            backend=args.backend,
        )
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.transcript is not None:
        args.transcript.write_bytes(
            b"\n".join(
                canonical_response(r) for r in report.responses
            )
            + b"\n"
        )
    if args.metrics_out is not None:
        args.metrics_out.write_text(
            json.dumps(report.metrics, indent=2, sort_keys=True) + "\n"
        )
    print(
        f"workbench: {report.served} ops answered, "
        f"{len(report.rejected)} rejected, "
        f"{report.sessions_opened} sessions opened "
        f"({report.sessions_evicted} evicted), "
        f"{report.sets_saved} sets saved"
    )
    print(
        f"artifact cache: {report.artifact_hits} hits / "
        f"{report.artifact_misses} misses "
        f"({report.artifact_hit_rate:.1%}); makespan "
        f"{report.makespan:.3f}s virtual "
        f"({report.throughput:.1f} ops/s)"
    )
    return 0


def _cmd_workbench_session(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ShardFormatError
    from repro.serve.query import Query
    from repro.workbench import (
        WorkbenchOp,
        WorkbenchScript,
        serve_workbench,
    )

    def _op_from_doc(doc: dict) -> WorkbenchOp:
        query = None
        if "terms" in doc:
            query = Query(
                kind=doc.get("kind", "search"),
                terms=tuple(doc["terms"]),
                k=int(doc.get("k", args.top)),
            )
        return WorkbenchOp(
            verb=doc["verb"],
            name=doc.get("name", ""),
            base=doc.get("base", ""),
            other=doc.get("other", ""),
            query=query,
            n=int(doc.get("n", args.n)),
            min_support=int(doc.get("min_support", 2)),
        )

    ops: list[WorkbenchOp] = [WorkbenchOp(verb="open")]
    if args.script is not None:
        try:
            docs = json.loads(args.script.read_text())
            ops += [_op_from_doc(d) for d in docs]
        except (ValueError, KeyError) as exc:
            print(f"error: bad script: {exc}", file=sys.stderr)
            return 1
    else:
        if args.search is None:
            print(
                "error: pass --search TERMS or --script FILE",
                file=sys.stderr,
            )
            return 1
        ops.append(
            WorkbenchOp(
                verb="search",
                name="anchor",
                query=Query(
                    kind="search",
                    terms=tuple(args.search.split()),
                    k=args.top,
                ),
            )
        )
        last = "anchor"
        if args.refine is not None:
            ops.append(
                WorkbenchOp(
                    verb="refine",
                    name="refined",
                    base="anchor",
                    query=Query(
                        kind="search",
                        terms=tuple(args.refine.split()),
                        k=args.top,
                    ),
                )
            )
            last = "refined"
        ops.append(WorkbenchOp(verb=args.derive, base=last, n=args.n))
    ops.append(WorkbenchOp(verb="close"))
    script = WorkbenchScript(
        tenant=args.tenant,
        client=0,
        ops=tuple(ops),
        think_s=tuple(0.0 for _ in ops),
    )
    try:
        report = serve_workbench(str(args.store), [script])
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for resp in report.responses:
        print(json.dumps(resp, indent=2, sort_keys=True))
    for rej in report.rejected:
        print(
            f"rejected op {rej.seq} ({rej.verb}): {rej.reason}",
            file=sys.stderr,
        )
    return 0 if not report.rejected else 1


def _cmd_ingest_feed(args: argparse.Namespace) -> int:
    from repro.ingest import FeedConfig, FeedSource, IngestJournal
    from repro.serve import ShardFormatError

    try:
        if args.journal.exists():
            journal = IngestJournal.open(args.journal)
        else:
            journal = IngestJournal.create(
                args.journal, corpus_name=args.dataset
            )
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    feed = FeedSource(
        FeedConfig(
            dataset=args.dataset,
            batch_docs=args.batch_docs,
            n_batches=args.batches,
            seed=args.seed,
            start_doc_id=args.start_doc_id,
            mean_interarrival_s=args.mean_interarrival,
            themes=args.themes,
            skip_docs=args.skip_docs,
            facet_sources=args.facet_sources,
        )
    )
    # re-feeding an existing journal continues after its last arrival
    base = journal.batches[-1].arrival_s if journal.batches else 0.0
    for corpus, arrival in feed.batches():
        entry = journal.append(corpus, base + arrival)
        print(
            f"batch {entry.index}: {entry.n_docs} docs at "
            f"t={entry.arrival_s:.3f}s -> {entry.file}"
        )
    print(
        f"journal {args.journal}: {len(journal)} batches, "
        f"{journal.n_docs} documents"
    )
    return 0


def _cmd_ingest_publish(args: argparse.Namespace) -> int:
    from repro.engine import load_result
    from repro.engine.incremental import refresh_recommended
    from repro.facets import extract_facets
    from repro.ingest import (
        CompactionPolicy,
        IngestJournal,
        append_generation,
        build_delta,
        compact_store,
        should_compact,
    )
    from repro.serve import ShardFormatError, load_manifest

    try:
        journal = IngestJournal.open(args.journal)
        manifest = load_manifest(args.store)
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = load_result(args.results)
    policy = CompactionPolicy(
        max_deltas=args.compact_max_deltas,
        max_delta_bytes_fraction=args.compact_max_bytes_fraction,
    )
    # the manifest records how many batches are already in: replaying
    # the same journal again publishes only the new tail
    done = manifest.ingested_batches
    pending = journal.replay()[done:]
    if not pending:
        print(
            f"nothing to publish: store already holds "
            f"{done} of {len(journal)} journal batches"
        )
        return 0
    rebuild = False
    for corpus, _arrival in pending:
        delta = build_delta(
            result, corpus.documents, facets=extract_facets(corpus)
        )
        manifest = append_generation(args.store, [delta])
        flagged = refresh_recommended(
            delta.projected,
            max_null_fraction=args.refresh_null_fraction,
            min_docs=args.refresh_min_docs,
        )
        rebuild = rebuild or flagged
        print(
            f"generation {manifest.generation}: +{delta.n_docs} docs "
            f"({delta.null_count} null signatures)"
            + ("  [rebuild recommended]" if flagged else "")
        )
        if should_compact(manifest, policy):
            manifest = compact_store(args.store)
            print(
                f"generation {manifest.generation}: compacted into "
                f"{manifest.nshards} base shards"
            )
    print(
        f"store {args.store}: generation {manifest.generation}, "
        f"{manifest.n_docs} documents, {len(manifest.deltas)} live deltas"
    )
    if rebuild:
        print(
            "warning: null-signature rate crossed the refresh "
            "threshold; schedule a full model rebuild",
            file=sys.stderr,
        )
    return 0


def _cmd_ingest_compact(args: argparse.Namespace) -> int:
    from repro.ingest import compact_store
    from repro.serve import ShardFormatError, load_manifest

    try:
        before = load_manifest(args.store)
        if not before.deltas:
            print(
                f"store {args.store}: no delta segments, nothing to do"
            )
            return 0
        manifest = compact_store(args.store)
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"compacted {len(before.deltas)} deltas into "
        f"{manifest.nshards} shards at generation {manifest.generation}"
    )
    return 0


def _cmd_ingest_status(args: argparse.Namespace) -> int:
    from repro.serve import ShardFormatError, verify_store

    try:
        manifest = verify_store(args.store)
    except ShardFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"store {args.store}: OK")
    print(f"  generation:       {manifest.generation}")
    print(f"  documents:        {manifest.n_docs}")
    print(
        f"  base shards:      {manifest.nshards} "
        f"({manifest.base_nbytes:,} bytes, "
        f"{manifest.base_n_docs} docs)"
    )
    print(
        f"  delta segments:   {len(manifest.deltas)} "
        f"({manifest.delta_nbytes:,} bytes)"
    )
    print(f"  ingested batches: {manifest.ingested_batches}")
    return 0


def _cmd_bench_ingest(args: argparse.Namespace) -> int:
    from repro.bench.ingest import run_bench

    shards = tuple(
        int(tok) for tok in args.shards.split(",") if tok.strip()
    )
    return run_bench(
        out_path=args.out,
        baseline_path=args.baseline,
        shards=shards,
        corpus_bytes=args.corpus_bytes,
        corpus_seed=args.corpus_seed,
        feed_seed=args.feed_seed,
        workload_seed=args.workload_seed,
        n_clients=args.clients,
        queries_per_client=args.queries_per_client,
        n_batches=args.batches,
        batch_docs=args.batch_docs,
        compact_max_deltas=args.compact_max_deltas,
        update_baseline=args.update_baseline,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "run": _cmd_run,
        "analyze": _cmd_analyze,
        "figures": _cmd_figures,
        "bench-wallclock": _cmd_bench_wallclock,
        "metrics-report": _cmd_metrics_report,
        "serve-build": _cmd_serve_build,
        "serve-query": _cmd_serve_query,
        "facet-query": _cmd_facet_query,
        "themeview-slices": _cmd_themeview_slices,
        "serve-bench": _cmd_serve_bench,
        "workbench-serve": _cmd_workbench_serve,
        "workbench-session": _cmd_workbench_session,
        "ingest-feed": _cmd_ingest_feed,
        "ingest-publish": _cmd_ingest_publish,
        "ingest-compact": _cmd_ingest_compact,
        "ingest-status": _cmd_ingest_status,
        "bench-ingest": _cmd_bench_ingest,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
