"""Distributed k-means clustering (Dhillon & Modha style).

Paper §3.5: "We implemented a distributed k-means clustering algorithm
in our process [9]" -- reference [9] is Dhillon & Modha's
message-passing k-means, in which every process holds a slice of the
points, assignment is local, and the new centroids are obtained by
all-reducing per-cluster partial sums and counts.

This module contains the *numerics* (seeding, assignment, partial
updates, a serial Lloyd driver); the parallel loop lives in the engine
where the allreduce happens.  Both paths share these functions so the
serial and parallel engines produce matching clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def kmeanspp_seeds(
    sample: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding on a (replicated) sample of the points.

    Runs identically on every rank given the same sample and RNG seed,
    so no broadcast of centroids is required beyond the sample itself.
    """
    n = sample.shape[0]
    if n == 0 or k < 1:
        raise ValueError("need a non-empty sample and k >= 1")
    k = min(k, n)
    centroids = np.empty((k, sample.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = sample[first]
    closest = np.sum((sample - centroids[0]) ** 2, axis=1)
    for c in range(1, k):
        total = float(closest.sum())
        if total <= 0.0:
            # all remaining points coincide with chosen centroids
            centroids[c:] = sample[int(rng.integers(n))]
            break
        probs = closest / total
        nxt = int(rng.choice(n, p=probs))
        centroids[c] = sample[nxt]
        d = np.sum((sample - centroids[c]) ** 2, axis=1)
        np.minimum(closest, d, out=closest)
    return centroids


def assign_points(
    points: np.ndarray, centroids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment.

    Returns ``(labels, sqdist)``.  Uses the expanded form
    ``|x|^2 - 2 x.c + |c|^2`` so the distance matrix is one GEMM.
    Ties go to the lowest cluster index (argmin), deterministically.
    """
    if points.size == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    x2 = np.sum(points**2, axis=1)[:, None]
    c2 = np.sum(centroids**2, axis=1)[None, :]
    d2 = x2 - 2.0 * (points @ centroids.T) + c2
    labels = np.argmin(d2, axis=1).astype(np.int64)
    sq = np.maximum(d2[np.arange(points.shape[0]), labels], 0.0)
    return labels, sq


def partial_update(
    points: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cluster coordinate sums and counts for this rank's points."""
    dim = points.shape[1] if points.ndim == 2 else 0
    sums = np.zeros((k, dim), dtype=np.float64)
    counts = np.zeros(k, dtype=np.int64)
    if points.size:
        np.add.at(sums, labels, points)
        counts = np.bincount(labels, minlength=k).astype(np.int64)
    return sums, counts


def centroids_from_partials(
    sums: np.ndarray,
    counts: np.ndarray,
    previous: np.ndarray,
) -> np.ndarray:
    """New centroids; clusters that captured no points keep their old
    position (a deterministic empty-cluster policy)."""
    out = previous.copy()
    nonzero = counts > 0
    out[nonzero] = sums[nonzero] / counts[nonzero, None]
    return out


@dataclass
class KMeansResult:
    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool


def lloyd(
    points: np.ndarray,
    init_centroids: np.ndarray,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> KMeansResult:
    """Serial Lloyd iterations (the single-process reference path)."""
    centroids = np.asarray(init_centroids, dtype=np.float64).copy()
    k = centroids.shape[0]
    labels = np.zeros(points.shape[0], dtype=np.int64)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        labels, sq = assign_points(points, centroids)
        sums, counts = partial_update(points, labels, k)
        new_centroids = centroids_from_partials(sums, counts, centroids)
        shift = float(np.max(np.abs(new_centroids - centroids), initial=0.0))
        centroids = new_centroids
        if shift <= tol:
            converged = True
            break
    labels, sq = assign_points(points, centroids)
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=float(sq.sum()),
        n_iter=it,
        converged=converged,
    )
