"""Two-level clustering: k-means micro-clusters + hierarchical merge.

Paper §3.5 notes that "other types of clustering could be applied that
would enable different means to explore the relationships of the data
(e.g., hierarchical clustering: single-link, complete, and various
adaptive cutting approaches)".  Running agglomerative clustering over
millions of documents is infeasible (O(n^3)), so the standard scalable
recipe -- and the one that drops into the paper's distributed
architecture unchanged -- is two-level: distributed k-means produces a
few dozen *micro-cluster* centroids, and the replicated hierarchical
merge runs over those.

Because the merge input (centroids + counts) is identical on every
rank, the parallel engine gets hierarchical clustering for free: no
additional communication beyond the k-means it already does.
"""

from __future__ import annotations

import numpy as np

from .hierarchical import agglomerative

#: linkage names accepted by the engine's ``cluster_method``
HIERARCHICAL_METHODS = ("single", "complete", "average")


def merge_micro_clusters(
    fine_centroids: np.ndarray,
    fine_counts: np.ndarray,
    n_clusters: int,
    linkage: str,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge k-means micro-clusters into ``n_clusters`` theme groups.

    Returns ``(mapping, coarse_centroids)`` where ``mapping[f]`` is the
    coarse cluster of fine cluster ``f`` and the coarse centroids are
    the count-weighted means of their members.  Empty micro-clusters
    (zero count) do not participate in the dendrogram and map to
    coarse cluster 0 (they have no documents, so the choice is moot).
    """
    fine_centroids = np.asarray(fine_centroids, dtype=np.float64)
    fine_counts = np.asarray(fine_counts, dtype=np.int64)
    k_fine = fine_centroids.shape[0]
    if fine_counts.shape != (k_fine,):
        raise ValueError("fine_counts must align with fine_centroids")
    live = np.flatnonzero(fine_counts > 0)
    if live.size == 0:
        raise ValueError("no non-empty micro-clusters to merge")
    n_out = min(n_clusters, live.size)
    dend = agglomerative(fine_centroids[live], linkage=linkage)
    live_labels = dend.cut_k(n_out)
    mapping = np.zeros(k_fine, dtype=np.int64)
    mapping[live] = live_labels
    # count-weighted coarse centroids
    dim = fine_centroids.shape[1]
    coarse = np.zeros((n_out, dim), dtype=np.float64)
    weights = np.zeros(n_out, dtype=np.float64)
    for f in live:
        c = mapping[f]
        coarse[c] += fine_counts[f] * fine_centroids[f]
        weights[c] += fine_counts[f]
    coarse /= weights[:, None]
    return mapping, coarse
