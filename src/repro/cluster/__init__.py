"""Clustering: distributed k-means plus hierarchical extensions."""

from .hierarchical import Dendrogram, agglomerative
from .twolevel import HIERARCHICAL_METHODS, merge_micro_clusters
from .kmeans import (
    KMeansResult,
    assign_points,
    centroids_from_partials,
    kmeanspp_seeds,
    lloyd,
    partial_update,
)

__all__ = [
    "Dendrogram",
    "KMeansResult",
    "HIERARCHICAL_METHODS",
    "agglomerative",
    "assign_points",
    "centroids_from_partials",
    "kmeanspp_seeds",
    "lloyd",
    "merge_micro_clusters",
    "partial_update",
]
