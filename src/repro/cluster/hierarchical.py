"""Agglomerative clustering alternatives.

Paper §3.5: "other types of clustering could be applied that would
enable different means to explore the relationships of the data (e.g.,
hierarchical clustering: single-link, complete, and various adaptive
cutting approaches)".  This module implements that extension: plain
agglomerative clustering with single / complete / average linkage and
two cutting strategies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_LINKAGES = ("single", "complete", "average")


@dataclass
class Dendrogram:
    """Merge history: row i merges clusters a, b at the given distance."""

    merges: np.ndarray  # (n-1, 2) int: merged cluster ids
    heights: np.ndarray  # (n-1,) float: merge distances
    n_points: int

    def cut_k(self, k: int) -> np.ndarray:
        """Labels for exactly ``k`` clusters (0..k-1, relabelled densely)."""
        if not 1 <= k <= self.n_points:
            raise ValueError(
                f"k={k} out of range [1, {self.n_points}]"
            )
        return self._labels_after(self.n_points - k)

    def cut_height(self, height: float) -> np.ndarray:
        """Labels after applying all merges with distance <= height."""
        n_apply = int(np.searchsorted(self.heights, height, side="right"))
        return self._labels_after(n_apply)

    def _labels_after(self, n_merges: int) -> np.ndarray:
        parent = np.arange(self.n_points + n_merges)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i in range(n_merges):
            a, b = self.merges[i]
            new = self.n_points + i
            parent[find(int(a))] = new
            parent[find(int(b))] = new
        roots = {}
        labels = np.empty(self.n_points, dtype=np.int64)
        for p in range(self.n_points):
            r = find(p)
            if r not in roots:
                roots[r] = len(roots)
            labels[p] = roots[r]
        return labels


def agglomerative(points: np.ndarray, linkage: str = "single") -> Dendrogram:
    """O(n^3) agglomerative clustering (reference implementation).

    Suitable for clustering *centroids* or samples, as the paper
    suggests, not the full multi-million-document collection.
    """
    if linkage not in _LINKAGES:
        raise ValueError(f"linkage must be one of {_LINKAGES}")
    n = points.shape[0]
    if n < 1:
        raise ValueError("need at least one point")
    # pairwise distances
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.sum(diff**2, axis=2))
    np.fill_diagonal(dist, np.inf)
    active = list(range(n))
    sizes = {i: 1 for i in range(n)}
    cluster_id = {i: i for i in range(n)}
    next_id = n
    merges = np.zeros((max(0, n - 1), 2), dtype=np.int64)
    heights = np.zeros(max(0, n - 1), dtype=np.float64)
    d = dist.copy()
    for step in range(n - 1):
        # closest active pair (ties: lowest indices, deterministic)
        sub = d[np.ix_(active, active)]
        flat = int(np.argmin(sub))
        ai, bi = divmod(flat, len(active))
        if ai > bi:
            ai, bi = bi, ai
        a, b = active[ai], active[bi]
        merges[step] = (cluster_id[a], cluster_id[b])
        heights[step] = float(d[a, b])
        # merge b into a with the requested linkage update
        for other in active:
            if other in (a, b):
                continue
            if linkage == "single":
                v = min(d[a, other], d[b, other])
            elif linkage == "complete":
                v = max(d[a, other], d[b, other])
            else:  # average
                v = (
                    sizes[a] * d[a, other] + sizes[b] * d[b, other]
                ) / (sizes[a] + sizes[b])
            d[a, other] = d[other, a] = v
        sizes[a] = sizes[a] + sizes[b]
        cluster_id[a] = next_id
        next_id += 1
        active.remove(b)
    return Dendrogram(merges=merges, heights=heights, n_points=n)
