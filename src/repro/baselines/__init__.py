"""Baseline strategies the paper compares against."""

from .loadbalance import run_ga_queue, run_master_worker, run_static

__all__ = ["run_ga_queue", "run_master_worker", "run_static"]
