"""Load-balancing strategy baselines (paper §3.3).

The paper argues that dynamic load balancing built on GA atomic
fetch-and-increment beats the traditional message-passing master-worker
strategy, whose single master "becomes a bottleneck" as processors
increase.  This module provides three interchangeable schedulers over
an abstract bag of tasks with known virtual costs, so the claim can be
benchmarked directly:

* :func:`run_static` -- no dynamic balancing: every rank runs exactly
  the tasks it owns;
* :func:`run_ga_queue` -- the paper's scheme: per-owner shared counters
  claimed with one-sided atomics (own loads first, then stealing);
* :func:`run_master_worker` -- the baseline: a dedicated master
  serializes every task hand-out (two messages + handling time per
  task), so workers queue up behind it at scale.

All three run the same task multiset; the return value is the list of
(task_id, executing rank) pairs plus per-rank completion times coming
from the run's virtual clocks.
"""

from __future__ import annotations

from typing import Sequence

from repro.ga.taskqueue import SharedTaskQueue
from repro.runtime.context import RankContext


def _execute(ctx: RankContext, cost: float) -> None:
    ctx.charge(cost)


def run_static(
    ctx: RankContext, task_costs: Sequence[Sequence[float]]
) -> list[tuple[int, int]]:
    """Each rank executes only its own tasks (no balancing)."""
    offsets = [0]
    for costs in task_costs:
        offsets.append(offsets[-1] + len(costs))
    executed = []
    for i, cost in enumerate(task_costs[ctx.rank]):
        _execute(ctx, cost)
        executed.append((offsets[ctx.rank] + i, ctx.rank))
    ctx.comm.barrier()
    return executed


def run_ga_queue(
    ctx: RankContext,
    task_costs: Sequence[Sequence[float]],
    chunk: int = 1,
) -> list[tuple[int, int]]:
    """The paper's GA-atomic shared task queue with work stealing."""
    flat: list[float] = []
    for costs in task_costs:
        flat.extend(costs)
    queue = SharedTaskQueue(
        ctx, "lb", [len(c) for c in task_costs], chunk=chunk
    )
    executed = []
    while (got := queue.next_chunk()) is not None:
        for t in range(got[0], got[1]):
            _execute(ctx, flat[t])
            executed.append((t, ctx.rank))
    ctx.comm.barrier()
    return executed


class _MasterState:
    """Serialized master bookkeeping shared across ranks.

    The master is modelled rather than run on a dedicated rank: each
    hand-out occupies the master for ``handle_cost`` seconds and the
    requests queue up in virtual-time order -- exactly the
    serialization that makes the strategy degrade with P.
    """

    def __init__(self) -> None:
        self.next_task = 0
        self.busy_until = 0.0


def run_master_worker(
    ctx: RankContext,
    task_costs: Sequence[Sequence[float]],
    handle_cost: float = 20e-6,
) -> list[tuple[int, int]]:
    """Master-worker baseline: a single master serializes dispatch."""
    flat: list[float] = []
    for costs in task_costs:
        flat.extend(costs)
    ctx.sched.wait_turn(ctx.rank)
    master: _MasterState = ctx.world.registry.setdefault(
        "lb:master", _MasterState()
    )
    machine = ctx.machine
    _, transit = machine.p2p_seconds(32.0)
    executed = []
    while True:
        # request -> master; master serializes; reply -> worker
        ctx.sched.wait_turn(ctx.rank)
        arrive = ctx.now + transit
        start = max(master.busy_until, arrive)
        master.busy_until = start + handle_cost
        task = master.next_task
        if task < len(flat):
            master.next_task += 1
        reply_at = master.busy_until + transit
        ctx.sched.clocks[ctx.rank].advance_to(reply_at)
        if task >= len(flat):
            break
        _execute(ctx, flat[task])
        executed.append((task, ctx.rank))
    ctx.comm.barrier()
    return executed
