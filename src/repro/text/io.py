"""Corpus serialization: line-delimited JSON sources on disk.

A *source* on disk is a ``.jsonl`` file with one record per line:
``{"doc_id": int, "fields": {name: text, ...}}``.  The engine can run
either from in-memory corpora or from source files; the file path
exists so the examples exercise the scan stage's real I/O code path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from .documents import Corpus, Document

PathLike = Union[str, Path]


def write_corpus(corpus: Corpus, path: PathLike) -> int:
    """Write a corpus to a ``.jsonl`` source file; returns bytes written."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    nbytes = 0
    with p.open("w", encoding="utf-8") as f:
        header = {
            "corpus": corpus.name,
            "represented_bytes": corpus.represented_bytes,
            "meta": corpus.meta,
        }
        line = json.dumps({"_header": header}) + "\n"
        f.write(line)
        nbytes += len(line)
        for doc in corpus:
            line = (
                json.dumps({"doc_id": doc.doc_id, "fields": doc.fields}) + "\n"
            )
            f.write(line)
            nbytes += len(line)
    return nbytes


def read_corpus(path: PathLike) -> Corpus:
    """Read a corpus from a ``.jsonl`` source file."""
    p = Path(path)
    documents: list[Document] = []
    name = p.stem
    represented = None
    meta: dict = {}
    with p.open("r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "_header" in obj:
                header = obj["_header"]
                name = header.get("corpus", name)
                represented = header.get("represented_bytes")
                meta = header.get("meta", {})
                continue
            documents.append(
                Document(doc_id=int(obj["doc_id"]), fields=dict(obj["fields"]))
            )
    return Corpus(
        name=name,
        documents=documents,
        represented_bytes=represented,
        meta=meta,
    )


def merge_corpora(name: str, corpora: Iterable[Corpus]) -> Corpus:
    """Concatenate several corpora, renumbering document IDs."""
    documents: list[Document] = []
    represented = 0.0
    any_represented = False
    for c in corpora:
        for d in c:
            documents.append(Document(doc_id=len(documents), fields=d.fields))
        if c.represented_bytes is not None:
            represented += c.represented_bytes
            any_represented = True
        else:
            represented += c.nbytes
    return Corpus(
        name=name,
        documents=documents,
        represented_bytes=represented if any_represented else None,
    )
