"""Tokenization: bytes -> terms.

Terms are separated by whitespace "or any delimiters specified during
configuration" (paper §3.2).  The tokenizer normalizes case, drops
terms outside a length band, and filters stopwords; an optional light
suffix-stripping stemmer folds trivial morphological variants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from .stopwords import DEFAULT_STOPWORDS


def _light_stem(term: str) -> str:
    """Cheap suffix stripping (not a full Porter stemmer).

    Keeps the reproduction dependency-free while folding the plural /
    gerund variants that would otherwise fragment term statistics.
    """
    for suffix in ("ingly", "edly", "ing", "ied", "ies", "ed", "es", "s"):
        if term.endswith(suffix) and len(term) - len(suffix) >= 3:
            stripped = term[: -len(suffix)]
            if suffix in ("ied", "ies"):
                stripped += "y"
            return stripped
    return term


@dataclass(frozen=True)
class TokenizerConfig:
    """Tokenizer behaviour knobs."""

    #: characters (beyond whitespace) treated as term delimiters
    delimiters: str = ".,;:!?\"'()[]{}<>/\\|`~@#$%^&*+=–—"
    lowercase: bool = True
    min_len: int = 2
    max_len: int = 32
    drop_numeric: bool = True
    stem: bool = False
    stopwords: frozenset[str] = field(
        default_factory=lambda: frozenset(DEFAULT_STOPWORDS)
    )


#: per-tokenizer bound on memoized raw tokens; a corpus vocabulary is
#: far smaller, so the cap only guards pathological unbounded streams
NORM_CACHE_MAX = 1 << 20


class Tokenizer:
    """Splits field text into normalized terms.

    Term normalization (length band, numeric filter, stopwords,
    stemming) is memoized per raw token: corpus token streams are
    highly redundant (Zipf), so nearly every token after the first few
    thousand documents is a cache hit that skips the regex match, the
    stopword probe, and the stemmer entirely.
    """

    def __init__(self, config: TokenizerConfig | None = None):
        self.config = config if config is not None else TokenizerConfig()
        escaped = re.escape(self.config.delimiters)
        self._split_re = re.compile(rf"[\s{escaped}]+")
        self._numeric_re = re.compile(r"^[\d\-]+$")
        #: raw (post-split, post-lowercase) token -> normalized term,
        #: or None when the token is dropped
        self._norm_cache: dict[str, str | None] = {}

    def _normalize_uncached(self, raw: str) -> str | None:
        """Reference normalization of one raw token (no memoization).

        Returns the normalized term, or ``None`` when the token is
        filtered out.  The memoized path in :meth:`tokens` must agree
        with this for every input (property-tested).
        """
        cfg = self.config
        if not cfg.min_len <= len(raw) <= cfg.max_len:
            return None
        if cfg.drop_numeric and self._numeric_re.match(raw):
            return None
        if raw in cfg.stopwords:
            return None
        if cfg.stem:
            raw = _light_stem(raw)
            if len(raw) < cfg.min_len:
                return None
        return raw

    def tokens(self, text: str) -> list[str]:
        """All terms of ``text`` in order (duplicates preserved)."""
        if self.config.lowercase:
            text = text.lower()
        cache = self._norm_cache
        out: list[str] = []
        for raw in self._split_re.split(text):
            if not raw:
                continue
            try:
                term = cache[raw]
            except KeyError:
                term = self._normalize_uncached(raw)
                if len(cache) < NORM_CACHE_MAX:
                    cache[raw] = term
            if term is not None:
                out.append(term)
        return out

    def unique_terms(self, texts: Iterable[str]) -> set[str]:
        """Set of distinct terms across ``texts``."""
        seen: set[str] = set()
        for t in texts:
            seen.update(self.tokens(t))
        return seen
