"""Tokenization: bytes -> terms.

Terms are separated by whitespace "or any delimiters specified during
configuration" (paper §3.2).  The tokenizer normalizes case, drops
terms outside a length band, and filters stopwords; an optional light
suffix-stripping stemmer folds trivial morphological variants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from .stopwords import DEFAULT_STOPWORDS


def _light_stem(term: str) -> str:
    """Cheap suffix stripping (not a full Porter stemmer).

    Keeps the reproduction dependency-free while folding the plural /
    gerund variants that would otherwise fragment term statistics.
    """
    for suffix in ("ingly", "edly", "ing", "ied", "ies", "ed", "es", "s"):
        if term.endswith(suffix) and len(term) - len(suffix) >= 3:
            stripped = term[: -len(suffix)]
            if suffix in ("ied", "ies"):
                stripped += "y"
            return stripped
    return term


@dataclass(frozen=True)
class TokenizerConfig:
    """Tokenizer behaviour knobs."""

    #: characters (beyond whitespace) treated as term delimiters
    delimiters: str = ".,;:!?\"'()[]{}<>/\\|`~@#$%^&*+=–—"
    lowercase: bool = True
    min_len: int = 2
    max_len: int = 32
    drop_numeric: bool = True
    stem: bool = False
    stopwords: frozenset[str] = field(
        default_factory=lambda: frozenset(DEFAULT_STOPWORDS)
    )


class Tokenizer:
    """Splits field text into normalized terms."""

    def __init__(self, config: TokenizerConfig | None = None):
        self.config = config if config is not None else TokenizerConfig()
        escaped = re.escape(self.config.delimiters)
        self._split_re = re.compile(rf"[\s{escaped}]+")
        self._numeric_re = re.compile(r"^[\d\-]+$")

    def tokens(self, text: str) -> list[str]:
        """All terms of ``text`` in order (duplicates preserved)."""
        cfg = self.config
        if cfg.lowercase:
            text = text.lower()
        out: list[str] = []
        for raw in self._split_re.split(text):
            if not raw:
                continue
            if not cfg.min_len <= len(raw) <= cfg.max_len:
                continue
            if cfg.drop_numeric and self._numeric_re.match(raw):
                continue
            if raw in cfg.stopwords:
                continue
            if cfg.stem:
                raw = _light_stem(raw)
                if len(raw) < cfg.min_len:
                    continue
            out.append(raw)
        return out

    def unique_terms(self, texts: Iterable[str]) -> set[str]:
        """Set of distinct terms across ``texts``."""
        seen: set[str] = set()
        for t in texts:
            seen.update(self.tokens(t))
        return seen
