"""Text substrate: documents, tokenization, corpus I/O."""

from .documents import Corpus, Document, partition_documents
from .formats import (
    parse_medline,
    parse_trec_sgml,
    read_medline,
    read_source,
    read_trec_sgml,
    write_medline,
    write_trec_sgml,
)
from .io import merge_corpora, read_corpus, write_corpus
from .stopwords import DEFAULT_STOPWORDS
from .tokenizer import Tokenizer, TokenizerConfig

__all__ = [
    "Corpus",
    "DEFAULT_STOPWORDS",
    "Document",
    "Tokenizer",
    "TokenizerConfig",
    "merge_corpora",
    "parse_medline",
    "parse_trec_sgml",
    "read_medline",
    "read_source",
    "read_trec_sgml",
    "write_medline",
    "write_trec_sgml",
    "partition_documents",
    "read_corpus",
    "write_corpus",
]
