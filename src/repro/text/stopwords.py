"""Default English stopword list.

A compact list of high-frequency function words; the engine's
topicality measure would rank these poorly anyway, but dropping them at
scan time shrinks the vocabulary and the forward index, as production
text engines do.
"""

DEFAULT_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are as at
    be because been before being below between both but by
    can cannot could did do does doing down during
    each few for from further had has have having he her here hers
    herself him himself his how
    i if in into is it its itself just
    me more most my myself
    no nor not now of off on once only or other our ours ourselves
    out over own
    same she should so some such
    than that the their theirs them themselves then there these they
    this those through to too
    under until up very
    was we were what when where which while who whom why will with
    would you your yours yourself yourselves
    """.split()
)
