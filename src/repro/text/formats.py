"""Byte-level source formats: TREC SGML and MEDLINE.

The paper's corpora arrive in specific on-disk formats -- GOV2 ships
TREC-SGML (``<DOC>``/``<DOCNO>`` framed records) and PubMed exports
MEDLINE tagged fields (``PMID-``, ``TI  -``, ``AB  -``).  The Scan &
Map stage "tokenizes by scanning the sequence of bytes; and identifies
records, fields, and terms" -- these parsers are that record/field
identification step, so the engine can consume realistic source files
rather than only pre-structured JSON.

Both formats round-trip: ``write_*`` then ``parse_*`` reproduces the
documents (whitespace-normalized).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from .documents import Corpus, Document

PathLike = Union[str, Path]

# ----------------------------------------------------------------------
# TREC SGML (GOV2-style)
# ----------------------------------------------------------------------
_DOC_RE = re.compile(rb"<DOC>(.*?)</DOC>", re.DOTALL)
_TAG_RE = re.compile(rb"<(DOCNO|DOCHDR|TITLE|TEXT)>(.*?)</\1>", re.DOTALL)


def write_trec_sgml(corpus: Corpus, path: PathLike) -> int:
    """Write a corpus as TREC-SGML; returns bytes written.

    Field mapping: ``url`` -> ``DOCHDR``, ``title`` -> ``TITLE``, the
    remaining fields are concatenated into ``TEXT``.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    chunks: list[str] = []
    for doc in corpus:
        fields = dict(doc.fields)
        url = fields.pop("url", "")
        title = fields.pop("title", "")
        text = "\n".join(fields.values())
        chunks.append(
            "<DOC>\n"
            f"<DOCNO>{corpus.name}-{doc.doc_id:08d}</DOCNO>\n"
            + (f"<DOCHDR>{url}</DOCHDR>\n" if url else "")
            + (f"<TITLE>{title}</TITLE>\n" if title else "")
            + f"<TEXT>\n{text}\n</TEXT>\n"
            "</DOC>\n"
        )
    data = "".join(chunks).encode("utf-8")
    p.write_bytes(data)
    return len(data)


def parse_trec_sgml(data: bytes, name: str = "trec") -> Corpus:
    """Parse TREC-SGML bytes into a corpus.

    Records are framed by ``<DOC>...</DOC>``; recognized inner tags
    become fields (``DOCHDR`` -> ``url``, ``TITLE`` -> ``title``,
    ``TEXT`` -> ``body``).  Unframed bytes are ignored, as TREC readers
    do.
    """
    documents: list[Document] = []
    for m in _DOC_RE.finditer(data):
        body = m.group(1)
        fields: dict[str, str] = {}
        for tag, content in _TAG_RE.findall(body):
            text = content.decode("utf-8", errors="replace").strip()
            key = {
                b"DOCNO": "docno",
                b"DOCHDR": "url",
                b"TITLE": "title",
                b"TEXT": "body",
            }[tag]
            if key == "docno":
                continue  # identity, not content
            fields[key] = text
        documents.append(Document(doc_id=len(documents), fields=fields))
    return Corpus(name=name, documents=documents)


def read_trec_sgml(path: PathLike) -> Corpus:
    p = Path(path)
    return parse_trec_sgml(p.read_bytes(), name=p.stem)


# ----------------------------------------------------------------------
# MEDLINE (PubMed-style)
# ----------------------------------------------------------------------
_MEDLINE_FIELDS = {
    "TI": "title",
    "AB": "abstract",
    "JT": "journal",
}
_MEDLINE_KEYS = {v: k for k, v in _MEDLINE_FIELDS.items()}


def write_medline(corpus: Corpus, path: PathLike) -> int:
    """Write a corpus in MEDLINE tagged format; returns bytes written.

    Known fields map to their MEDLINE tags (title -> TI, abstract ->
    AB, journal -> JT); other fields use a generic ``XX`` tag with the
    field name embedded.  Long values are wrapped with continuation
    lines (six leading spaces), as in real MEDLINE exports.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    lines: list[str] = []
    for doc in corpus:
        lines.append(f"PMID- {doc.doc_id}")
        for field_name, value in doc.fields.items():
            tag = _MEDLINE_KEYS.get(field_name)
            if tag is None:
                lines.append(f"XX  - [{field_name}] {value}")
                continue
            wrapped = _wrap(value, width=72)
            lines.append(f"{tag:<4}- {wrapped[0]}")
            for cont in wrapped[1:]:
                lines.append("      " + cont)
        lines.append("")  # blank record separator
    data = ("\n".join(lines) + "\n").encode("utf-8")
    p.write_bytes(data)
    return len(data)


def _wrap(text: str, width: int) -> list[str]:
    words = text.split()
    if not words:
        return [""]
    out: list[str] = []
    line = words[0]
    for w in words[1:]:
        if len(line) + 1 + len(w) <= width:
            line += " " + w
        else:
            out.append(line)
            line = w
    out.append(line)
    return out


def parse_medline(data: bytes, name: str = "medline") -> Corpus:
    """Parse MEDLINE tagged bytes into a corpus."""
    documents: list[Document] = []
    fields: dict[str, str] = {}
    current_key: str | None = None
    saw_record = False

    def flush() -> None:
        nonlocal fields, saw_record, current_key
        if saw_record:
            documents.append(
                Document(doc_id=len(documents), fields=dict(fields))
            )
        fields = {}
        current_key = None
        saw_record = False

    for raw in data.decode("utf-8", errors="replace").splitlines():
        if not raw.strip():
            flush()
            continue
        if raw.startswith("      ") and current_key is not None:
            fields[current_key] += " " + raw.strip()
            continue
        m = re.match(r"^([A-Z]{2,4})\s*- (.*)$", raw)
        if not m:
            continue
        tag, value = m.group(1), m.group(2)
        if tag == "PMID":
            flush()
            saw_record = True
            current_key = None
            continue
        if tag == "XX":
            xm = re.match(r"^\[([^\]]+)\] (.*)$", value)
            if xm:
                current_key = xm.group(1)
                fields[current_key] = xm.group(2)
            continue
        key = _MEDLINE_FIELDS.get(tag)
        if key is None:
            current_key = None
            continue
        fields[key] = value
        current_key = key
    flush()
    return Corpus(name=name, documents=documents)


def read_medline(path: PathLike) -> Corpus:
    p = Path(path)
    return parse_medline(p.read_bytes(), name=p.stem)


# ----------------------------------------------------------------------
# extension-based dispatch
# ----------------------------------------------------------------------
def read_source(path: PathLike) -> Corpus:
    """Read a source file, picking the parser from its extension.

    ``.jsonl`` -> JSON lines, ``.sgml``/``.trec`` -> TREC SGML,
    ``.med``/``.medline`` -> MEDLINE.
    """
    from .io import read_corpus

    p = Path(path)
    suffix = p.suffix.lower()
    if suffix == ".jsonl":
        return read_corpus(p)
    if suffix in (".sgml", ".trec"):
        return read_trec_sgml(p)
    if suffix in (".med", ".medline"):
        return read_medline(p)
    raise ValueError(f"unknown source format {suffix!r} for {p}")
