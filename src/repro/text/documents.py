"""Document / field / corpus data model.

The paper's terminology (§2.1): a *source* is a collection of
documents (records); each document is a set of named *fields*; each
field is a sequence of *terms*.  We model documents as immutable
records with string fields; byte sizes drive the static partitioner
and the I/O cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence


@dataclass(frozen=True)
class Document:
    """One record of a source: an ID plus named text fields."""

    doc_id: int
    fields: dict[str, str]

    @property
    def nbytes(self) -> int:
        """Approximate on-disk size of this record."""
        return sum(
            len(k) + len(v.encode("utf-8", errors="replace")) + 4
            for k, v in self.fields.items()
        )

    def text(self) -> str:
        """All field contents joined (field order preserved)."""
        return " ".join(self.fields.values())


@dataclass
class Corpus:
    """A named collection of documents plus reproduction metadata."""

    name: str
    documents: list[Document]
    #: the real-world byte size this corpus stands for (``None`` when it
    #: represents itself); see ``MachineSpec.workload_scale``
    represented_bytes: Optional[float] = None
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __getitem__(self, i: int) -> Document:
        return self.documents[i]

    @property
    def nbytes(self) -> int:
        """Generated (actual) byte size of the corpus."""
        return sum(d.nbytes for d in self.documents)

    @property
    def field_names(self) -> list[str]:
        """Union of field names across documents, first-seen order."""
        seen: dict[str, None] = {}
        for d in self.documents:
            for k in d.fields:
                seen.setdefault(k, None)
        return list(seen)

    def workload_scale(self) -> float:
        """Bytes-represented per byte-generated (>= 1.0)."""
        if self.represented_bytes is None:
            return 1.0
        actual = self.nbytes
        if actual <= 0:
            return 1.0
        return max(1.0, self.represented_bytes / actual)


def partition_documents(
    documents: Sequence[Document], nprocs: int
) -> list[list[Document]]:
    """Static partitioning of sources by byte size (paper §3.2).

    Documents are assigned in contiguous runs such that each rank
    receives approximately ``total_bytes / nprocs`` bytes.  Contiguity
    preserves global document order, which keeps the parallel engine's
    output identical to the serial engine's.
    """
    if nprocs < 1:
        raise ValueError(f"nprocs must be >= 1, got {nprocs}")
    sizes = [d.nbytes for d in documents]
    total = sum(sizes)
    parts: list[list[Document]] = [[] for _ in range(nprocs)]
    if total == 0:
        for i, d in enumerate(documents):
            parts[i % nprocs].append(d)
        return parts
    target = total / nprocs
    rank = 0
    acc = 0.0
    for d, sz in zip(documents, sizes):
        # move on to the next rank once this one has its fair share,
        # keeping at least the possibility of documents for the rest
        if acc >= target * (rank + 1) and rank < nprocs - 1:
            rank += 1
        parts[rank].append(d)
        acc += sz
    return parts
