"""Inverted-file indexing (FAST-INV) and global term statistics."""

from .fastinv import (
    Postings,
    fields_to_docs,
    invert_bruteforce,
    invert_chunk,
    merge_doc_postings,
)
from .stats import TermStats, stats_from_doc_postings

__all__ = [
    "Postings",
    "TermStats",
    "fields_to_docs",
    "invert_bruteforce",
    "invert_chunk",
    "merge_doc_postings",
    "stats_from_doc_postings",
]
