"""Global term statistics (paper §3.3, "Global term statistics").

After inverted-file indexing, each term owner holds the complete
term-to-document postings for its vocabulary block; document frequency
(df) and collection frequency (cf) follow directly.  In the parallel
engine these land in global arrays (one row per dense term ID) so any
process can consult them during signature generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fastinv import Postings


@dataclass
class TermStats:
    """df / cf arrays over a contiguous dense-gid range ``[lo, hi)``."""

    gid_lo: int
    gid_hi: int
    df: np.ndarray  # documents containing the term
    cf: np.ndarray  # total occurrences of the term

    @property
    def nterms(self) -> int:
        return self.gid_hi - self.gid_lo


def stats_from_doc_postings(
    postings: Postings, gid_lo: int, gid_hi: int
) -> TermStats:
    """Compute df/cf for terms in ``[gid_lo, gid_hi)`` from postings.

    ``postings`` must be aggregated term-to-document postings (one row
    per (term, doc) pair) restricted to -- or at least covering -- the
    gid range.
    """
    n = gid_hi - gid_lo
    if n < 0:
        raise ValueError(f"bad gid range [{gid_lo}, {gid_hi})")
    df = np.zeros(n, dtype=np.int64)
    cf = np.zeros(n, dtype=np.int64)
    if len(postings) and n:
        mask = (postings.gids >= gid_lo) & (postings.gids < gid_hi)
        g = postings.gids[mask] - gid_lo
        df = np.bincount(g, minlength=n).astype(np.int64)
        cf = np.bincount(
            g, weights=postings.counts[mask], minlength=n
        ).astype(np.int64)
    return TermStats(gid_lo=gid_lo, gid_hi=gid_hi, df=df, cf=cf)
