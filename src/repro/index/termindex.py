"""Major-term -> document postings for ranked term search.

The serving layer (:mod:`repro.serve`) answers ranked term searches
with tf·icf scoring over an inverted index restricted to the model's
major terms.  This module builds that index from a corpus plus an
:class:`~repro.engine.results.EngineResult` -- re-tokenizing with the
engine's tokenizer, mapping tokens onto major-term rows, and inverting
with the FAST-INV kernels from :mod:`repro.index.fastinv` -- and hosts
the scoring kernel both the single-result reference path
(:meth:`repro.analysis.session.AnalysisSession.term_search`) and the
shard-parallel path execute.

Determinism contract: per-document scores are accumulated **in query
term order**, so a document's score is the same float regardless of how
the posting lists are split across shards.  The serving layer's
bit-identity acceptance test rests on this.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.index.fastinv import invert_chunk
from repro.text.tokenizer import Tokenizer, TokenizerConfig

#: default postings per block for block-max metadata
BLOCK_SIZE = 128


def compute_posting_blocks(
    offsets: np.ndarray, tf: np.ndarray, block_size: int = BLOCK_SIZE
) -> tuple[np.ndarray, np.ndarray]:
    """Block table ``(block_offsets, block_maxtf)`` of a posting layout.

    Every term run is chunked into blocks of at most ``block_size``
    postings, restarting at each run boundary (a block never crosses
    terms).  Blocks tile the postings contiguously, so one ascending
    boundary array describes them all: block ``j`` covers postings
    ``[block_offsets[j], block_offsets[j+1])`` and ``block_maxtf[j]``
    is the largest term frequency inside it (the per-block score-bound
    input of the block-max search kernel).  Both arrays are a pure
    function of ``(offsets, tf, block_size)``, which is what makes a
    compacted store's block sections byte-identical to a fresh build's.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    offsets = np.asarray(offsets, dtype=np.int64)
    tf = np.asarray(tf, dtype=np.int64)
    counts = np.diff(offsets)
    nb = -(-counts // block_size)  # ceil per term; 0 for empty runs
    total_blocks = int(nb.sum())
    if total_blocks == 0:
        return (
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    seg = np.repeat(np.arange(counts.shape[0], dtype=np.int64), nb)
    first = np.repeat(np.cumsum(nb) - nb, nb)
    within = np.arange(total_blocks, dtype=np.int64) - first
    block_lo = offsets[:-1][seg] + within * block_size
    block_hi = np.minimum(block_lo + block_size, offsets[1:][seg])
    block_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), block_hi]
    ).astype(np.int64)
    block_maxtf = np.maximum.reduceat(tf, block_lo).astype(np.int64)
    return block_offsets, block_maxtf


@dataclass
class TermPostings:
    """Columnar term -> document postings over the major-term model.

    Term *row* ``i`` is the i-th entry of the result's canonical
    ``major_terms`` ranking; document *rows* index ``result.doc_ids``.
    ``rows[offsets[i]:offsets[i+1]]`` are the (ascending) document rows
    containing term ``i``, with term frequencies in the parallel ``tf``
    slice.

    Block metadata (optional): :meth:`with_blocks` attaches the
    fixed-size block table of :func:`compute_posting_blocks`.  Because
    the table is a pure function of the posting layout,
    :meth:`restrict` and :func:`concat_postings` preserve it by
    recomputation -- a shard split or a delta-generation concatenation
    of blocked postings is itself blocked, with exactly the table a
    fresh :meth:`with_blocks` would produce.
    """

    n_docs: int
    #: (n_terms + 1,) prefix offsets into ``rows``/``tf``
    offsets: np.ndarray
    #: document rows, ascending within each term run
    rows: np.ndarray
    #: term frequencies, parallel to ``rows``
    tf: np.ndarray
    #: postings per block when block metadata is attached
    block_size: int | None = None
    #: (n_blocks + 1,) ascending block boundaries tiling the postings
    block_offsets: np.ndarray | None = None
    #: (n_blocks,) max term frequency inside each block
    block_maxtf: np.ndarray | None = None

    @property
    def n_terms(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @property
    def n_blocks(self) -> int:
        if self.block_offsets is None:
            return 0
        return int(self.block_offsets.shape[0] - 1)

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    def term_slice(self, term_row: int) -> tuple[np.ndarray, np.ndarray]:
        """``(doc_rows, tfs)`` of one term's posting run."""
        lo = int(self.offsets[term_row])
        hi = int(self.offsets[term_row + 1])
        return self.rows[lo:hi], self.tf[lo:hi]

    def with_blocks(self, block_size: int = BLOCK_SIZE) -> "TermPostings":
        """A copy carrying the block table for ``block_size``."""
        block_offsets, block_maxtf = compute_posting_blocks(
            self.offsets, self.tf, block_size
        )
        return replace(
            self,
            block_size=block_size,
            block_offsets=block_offsets,
            block_maxtf=block_maxtf,
        )

    def term_block_range(self, term_row: int) -> tuple[int, int]:
        """Block-index range ``[lo, hi)`` of one term's run.

        Run boundaries are always block boundaries, so both ends are
        exact ``searchsorted`` hits.
        """
        if self.block_offsets is None:
            raise ValueError("postings carry no block metadata")
        lo = int(
            np.searchsorted(self.block_offsets, self.offsets[term_row])
        )
        hi = int(
            np.searchsorted(
                self.block_offsets, self.offsets[term_row + 1]
            )
        )
        return lo, hi

    def restrict(self, row_lo: int, row_hi: int) -> "TermPostings":
        """Postings of document rows ``[row_lo, row_hi)``, rebased.

        This is the shard partitioner: document rows are renumbered to
        be shard-local (``rows - row_lo``) and every term keeps its
        global term row.  Because rows ascend within a term run, a
        contiguous document range selects a contiguous sub-run of every
        term -- found by one ``np.searchsorted`` pair per run, so the
        cost is O(n_terms log + output) rather than a mask scan over
        every posting.
        """
        if not 0 <= row_lo <= row_hi <= self.n_docs:
            raise ValueError(
                f"bad row range [{row_lo}, {row_hi}) for "
                f"{self.n_docs} documents"
            )
        n_terms = self.n_terms
        lo = np.empty(n_terms, dtype=np.int64)
        hi = np.empty(n_terms, dtype=np.int64)
        for t in range(n_terms):
            a = int(self.offsets[t])
            b = int(self.offsets[t + 1])
            run = self.rows[a:b]
            lo[t] = a + np.searchsorted(run, row_lo, side="left")
            hi[t] = a + np.searchsorted(run, row_hi, side="left")
        kept = hi - lo
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(kept)]
        )
        total = int(offsets[-1])
        # gather indices of every kept posting: each term's contiguous
        # sub-run [lo[t], hi[t]) laid out back to back
        take = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], kept)
            + np.repeat(lo, kept)
        )
        out = TermPostings(
            n_docs=row_hi - row_lo,
            offsets=offsets,
            rows=(self.rows[take] - row_lo).astype(np.int64),
            tf=self.tf[take].astype(np.int64),
        )
        if self.block_size is not None:
            out = out.with_blocks(self.block_size)
        return out


def build_term_postings(
    corpus,
    result,
    tokenizer_config: TokenizerConfig | None = None,
) -> TermPostings:
    """Invert ``corpus`` onto the result's major-term rows.

    Tokenization must match the engine run that produced ``result``;
    pass the run's ``EngineConfig.tokenizer`` when it was non-default.
    Documents absent from ``result.doc_ids`` are ignored, as are tokens
    outside the major-term model.
    """
    tokenizer = Tokenizer(
        tokenizer_config
        if tokenizer_config is not None
        else TokenizerConfig()
    )
    term_row = {t.term: i for i, t in enumerate(result.major_terms)}
    doc_row = {int(d): i for i, d in enumerate(result.doc_ids)}
    n_docs = int(result.doc_ids.shape[0])
    n_terms = len(result.major_terms)
    gid_parts: list[int] = []
    row_parts: list[int] = []
    for doc in corpus.documents:
        row = doc_row.get(doc.doc_id)
        if row is None:
            continue
        for text in doc.fields.values():
            for tok in tokenizer.tokens(text):
                t = term_row.get(tok)
                if t is not None:
                    gid_parts.append(t)
                    row_parts.append(row)
    gids = np.asarray(gid_parts, dtype=np.int64)
    rows = np.asarray(row_parts, dtype=np.int64)
    _t2f, t2d = invert_chunk(gids, rows, np.zeros_like(gids))
    offsets = np.searchsorted(
        t2d.gids, np.arange(n_terms + 1, dtype=np.int64)
    ).astype(np.int64)
    return TermPostings(
        n_docs=n_docs,
        offsets=offsets,
        rows=t2d.keys.astype(np.int64),
        tf=t2d.counts.astype(np.int64),
    )


def build_batch_postings(
    documents,
    result,
    tokenizer_config: TokenizerConfig | None = None,
) -> TermPostings:
    """Invert one ingest batch onto the result's major-term rows.

    The live-ingest analogue of :func:`build_term_postings`: document
    rows are batch-local ``0..len(documents)-1`` in input order, and
    tokenization iterates fields exactly like the corpus path so a
    later compaction reproduces a fresh build's postings byte for
    byte.
    """
    tokenizer = Tokenizer(
        tokenizer_config
        if tokenizer_config is not None
        else TokenizerConfig()
    )
    term_row = {t.term: i for i, t in enumerate(result.major_terms)}
    n_terms = len(result.major_terms)
    gid_parts: list[int] = []
    row_parts: list[int] = []
    for row, doc in enumerate(documents):
        for text in doc.fields.values():
            for tok in tokenizer.tokens(text):
                t = term_row.get(tok)
                if t is not None:
                    gid_parts.append(t)
                    row_parts.append(row)
    gids = np.asarray(gid_parts, dtype=np.int64)
    rows = np.asarray(row_parts, dtype=np.int64)
    _t2f, t2d = invert_chunk(gids, rows, np.zeros_like(gids))
    offsets = np.searchsorted(
        t2d.gids, np.arange(n_terms + 1, dtype=np.int64)
    ).astype(np.int64)
    return TermPostings(
        n_docs=len(documents),
        offsets=offsets,
        rows=t2d.keys.astype(np.int64),
        tf=t2d.counts.astype(np.int64),
    )


def concat_postings(parts: "list[TermPostings]") -> TermPostings:
    """Stack postings of document ranges laid out back to back.

    Part ``i``'s document rows are rebased by the total length of the
    parts before it, and each term's run is the in-order concatenation
    of the parts' runs -- exactly the postings a single inversion over
    the concatenated document sequence would produce (rows ascend
    within a run because each part's rows do and rebasing preserves
    part order).
    """
    if not parts:
        raise ValueError("concat_postings needs at least one part")
    n_terms = parts[0].n_terms
    for p in parts[1:]:
        if p.n_terms != n_terms:
            raise ValueError(
                f"postings disagree on term count: {p.n_terms} != {n_terms}"
            )
    n_docs = sum(p.n_docs for p in parts)
    kept = np.zeros(n_terms, dtype=np.int64)
    for p in parts:
        kept += np.diff(p.offsets)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(kept)]
    )
    total = int(offsets[-1])
    rows = np.empty(total, dtype=np.int64)
    tf = np.empty(total, dtype=np.int64)
    cursor = offsets[:-1].copy()
    base = 0
    for p in parts:
        for t in range(n_terms):
            lo = int(p.offsets[t])
            hi = int(p.offsets[t + 1])
            if hi > lo:
                n = hi - lo
                c = int(cursor[t])
                rows[c : c + n] = p.rows[lo:hi] + base
                tf[c : c + n] = p.tf[lo:hi]
                cursor[t] = c + n
        base += p.n_docs
    out = TermPostings(n_docs=n_docs, offsets=offsets, rows=rows, tf=tf)
    if parts[0].block_size is not None:
        out = out.with_blocks(parts[0].block_size)
    return out


def topk_score_row(
    scores: np.ndarray, rows: np.ndarray, k: int
) -> np.ndarray:
    """Indices of the top-``k`` entries by ``(-score, row)``.

    The serving layer's one merge order: descending score with
    ascending global document row breaking ties, selected stably.
    Every ranked answer -- shard-local top-k, broker merge, workbench
    set algebra -- selects through this helper so tie order cannot
    drift between subsystems.
    """
    scores = np.asarray(scores, dtype=np.float64)
    rows = np.asarray(rows, dtype=np.int64)
    take = rows.size if k < 0 else min(k, rows.size)
    return np.lexsort((rows, -scores))[:take]


def set_term_tf(
    postings: TermPostings, member_rows: np.ndarray
) -> tuple[np.ndarray, int]:
    """Per-term int64 tf totals over a set of document rows.

    ``member_rows`` are postings-local rows (any order, no
    duplicates).  Returns ``(totals, postings scanned)`` where
    ``totals[t]`` is the exact integer sum of term ``t``'s frequencies
    inside the member set.  Integer addition is associative, so
    summing per-shard totals in shard order reproduces the single
    array's totals bit for bit at every shard count -- the workbench
    keyphrase determinism contract.
    """
    member_rows = np.asarray(member_rows, dtype=np.int64)
    mask = np.zeros(postings.n_docs, dtype=bool)
    mask[member_rows] = True
    keep = mask[postings.rows]
    term_ids = np.repeat(
        np.arange(postings.n_terms, dtype=np.int64),
        np.diff(postings.offsets),
    )
    out = np.zeros(postings.n_terms, dtype=np.int64)
    np.add.at(out, term_ids[keep], postings.tf[keep])
    return out, int(postings.rows.shape[0])


def set_term_cooccurrence(
    postings: TermPostings,
    member_rows: np.ndarray,
    term_rows: "list[int]",
) -> tuple[np.ndarray, int]:
    """Document co-occurrence counts of selected terms over a set.

    Returns ``(C, postings scanned)`` where ``C[i, j]`` is the exact
    int64 number of member documents containing both
    ``term_rows[i]`` and ``term_rows[j]`` (diagonal = in-set document
    frequency).  Computed as ``B.T @ B`` on an int64 incidence matrix,
    so per-shard matrices sum exactly across any shard layout.
    """
    member_rows = np.asarray(member_rows, dtype=np.int64)
    m = len(term_rows)
    n = int(member_rows.shape[0])
    if m == 0 or n == 0:
        return np.zeros((m, m), dtype=np.int64), 0
    rank = np.full(postings.n_docs, -1, dtype=np.int64)
    rank[member_rows] = np.arange(n, dtype=np.int64)
    incidence = np.zeros((n, m), dtype=np.int64)
    scanned = 0
    for j, t in enumerate(term_rows):
        rows, _tfs = postings.term_slice(int(t))
        scanned += int(rows.size)
        if rows.size:
            r = rank[rows]
            incidence[r[r >= 0], j] = 1
    return incidence.T @ incidence, scanned


def icf_weights(df: np.ndarray, n_docs: int) -> np.ndarray:
    """Inverse-collection-frequency term weights.

    ``log1p(n_docs / df)`` over the major terms' document frequencies:
    a pure function of the (replicated) model statistics, so every
    shard computes the identical weight vector.
    """
    df = np.asarray(df, dtype=np.float64)
    return np.log1p(float(n_docs) / np.maximum(df, 1.0))


def accumulate_tficf(
    postings: TermPostings,
    term_rows: list[int],
    icf: np.ndarray,
    out: np.ndarray,
) -> int:
    """Add each query term's ``tf * icf`` contribution into ``out``.

    ``out`` is a float64 score array over the postings' document rows
    (shard-local or global).  Terms are applied **in the given order**
    -- the op-order contract that makes shard-split scores bit-identical
    to the single-array path.  Returns the number of postings scanned
    (the bytes-scanned accounting input).
    """
    scanned = 0
    for r in term_rows:
        rows, tfs = postings.term_slice(int(r))
        if rows.size:
            out[rows] += tfs * icf[int(r)]
        scanned += int(rows.size)
    return scanned
