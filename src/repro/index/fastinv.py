"""FAST-INV style inversion of forward-index chunks.

FAST-INV (Fox & Lee, 1991) builds large inverted files without
sorting the whole posting stream: postings are counted per term,
offsets are computed by prefix sum, and postings are then scattered
into their preallocated buckets in one pass.  We implement exactly that
counting structure with NumPy primitives (``bincount`` + ``cumsum`` +
stable scatter), then run-length-encode equal keys to aggregate term
frequencies.

Two products, as in the paper's steps 2-3:

* the **term-to-field index** -- postings ``(gid, field, count)``;
* the **term-to-document index** -- postings ``(gid, doc, tf)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Postings:
    """Columnar postings: parallel arrays sorted by (gid, key)."""

    gids: np.ndarray
    keys: np.ndarray  # field id or doc id
    counts: np.ndarray

    def __len__(self) -> int:
        return int(self.gids.shape[0])

    @classmethod
    def empty(cls) -> "Postings":
        z = np.empty(0, dtype=np.int64)
        return cls(z, z.copy(), z.copy())

    @classmethod
    def concatenate(cls, parts: "list[Postings]") -> "Postings":
        parts = [p for p in parts if len(p)]
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.gids for p in parts]),
            np.concatenate([p.keys for p in parts]),
            np.concatenate([p.counts for p in parts]),
        )


#: Largest chunk (token count) for which ``invert_chunk`` prefers the
#: explicit FAST-INV loop over ``np.argsort(kind="stable")``.  Measured
#: empirically (see ``benchmarks/test_kernels.py::test_fastinv_order_*``
#: and the crossover sweep in its module docstring): the loop *never*
#: wins -- at n=4 it is already ~6x slower (9.3us vs 1.5us) because its
#: ``bincount``/``cumsum`` setup pays the same NumPy fixed costs as the
#: argsort and then adds a Python-level scatter, and the gap only grows
#: with n (~27x at n=1024).  The threshold is therefore 0: the loop is
#: executable documentation and a test oracle, never the production
#: path.  Re-run the sweep on new hardware before raising this.
FASTINV_LOOP_MAX = 0


def _fastinv_order(gids: np.ndarray, nterms_hint: int | None = None) -> np.ndarray:
    """Permutation grouping postings by term, FAST-INV style.

    Equivalent to a stable counting sort on the term ID: bucket sizes
    via ``bincount``, bucket starts via ``cumsum``, then a stable
    scatter.  Preserves original (hence document) order within a term.
    """
    if gids.size == 0:
        return np.empty(0, dtype=np.int64)
    nterms = int(gids.max()) + 1 if nterms_hint is None else nterms_hint
    counts = np.bincount(gids, minlength=nterms)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    order = np.empty(gids.size, dtype=np.int64)
    # stable scatter: positions within each bucket follow input order
    cursor = starts.copy()
    for i, g in enumerate(gids):
        order[cursor[g]] = i
        cursor[g] += 1
    return order


def _fastinv_order_vectorized(gids: np.ndarray) -> np.ndarray:
    """Vectorized equivalent of :func:`_fastinv_order`.

    ``np.argsort(kind="stable")`` on integer keys is a radix/counting
    sort internally -- the same algorithmic family as FAST-INV -- and
    is what production use should call.  The explicit loop variant is
    kept (and tested against this one) as executable documentation of
    the algorithm.
    """
    return np.argsort(gids, kind="stable")


def _run_length_aggregate(
    gids: np.ndarray, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse consecutive equal (gid, key) pairs into counts.

    Requires the input grouped by gid with keys grouped within gid.
    """
    if gids.size == 0:
        z = np.empty(0, dtype=np.int64)
        return z, z.copy(), z.copy()
    boundary = np.empty(gids.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (gids[1:] != gids[:-1]) | (keys[1:] != keys[:-1])
    idx = np.flatnonzero(boundary)
    counts = np.diff(np.concatenate([idx, [gids.size]]))
    return gids[idx], keys[idx], counts.astype(np.int64)


def invert_chunk(
    gids: np.ndarray,
    doc_ids: np.ndarray,
    field_ids: np.ndarray,
    use_reference_loop: bool = False,
) -> tuple[Postings, Postings]:
    """Invert one forward-index chunk.

    Returns ``(term_to_field, term_to_doc)`` postings.  ``gids``,
    ``doc_ids`` and ``field_ids`` are parallel per-token arrays as
    produced by :meth:`repro.scan.ForwardIndex.chunk_streams`.
    """
    if not (gids.shape == doc_ids.shape == field_ids.shape):
        raise ValueError("parallel posting arrays must share a shape")
    if gids.size == 0:
        return Postings.empty(), Postings.empty()
    # selection is empirical: see FASTINV_LOOP_MAX (currently 0, i.e.
    # the vectorized path always wins); use_reference_loop forces the
    # explicit loop for tests and documentation runs
    if use_reference_loop or gids.size <= FASTINV_LOOP_MAX:
        order = _fastinv_order(gids)
    else:
        order = _fastinv_order_vectorized(gids)
    g = gids[order]
    d = doc_ids[order]
    f = field_ids[order]
    # Within a term, tokens keep document order (stable sort), and each
    # document's fields are contiguous in the stream, so equal
    # (gid, field) and (gid, doc) pairs are consecutive runs.
    tf_gids, tf_keys, tf_counts = _run_length_aggregate(g, f)
    td_gids, td_keys, td_counts = _run_length_aggregate(g, d)
    term_to_field = Postings(tf_gids, tf_keys, tf_counts)
    term_to_doc = Postings(td_gids, td_keys, td_counts)
    return term_to_field, term_to_doc


def fields_to_docs(term_to_field: Postings, nfields_global: int) -> Postings:
    """Aggregate a term-to-field index into a term-to-document index.

    Paper step 3: "Use the term-to-field index to create a
    term-to-record index."  Global field IDs encode their document as
    ``doc_id * nfields_global + field_index``, so the aggregation is a
    run-length collapse of consecutive equal (gid, doc) pairs (fields of
    one document are adjacent in the stream).
    """
    if nfields_global < 1:
        raise ValueError(f"nfields_global must be >= 1, got {nfields_global}")
    if len(term_to_field) == 0:
        return Postings.empty()
    doc_keys = term_to_field.keys // nfields_global
    g = term_to_field.gids
    boundary = np.empty(g.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (g[1:] != g[:-1]) | (doc_keys[1:] != doc_keys[:-1])
    idx = np.flatnonzero(boundary)
    seg = np.cumsum(boundary) - 1
    counts = np.bincount(seg, weights=term_to_field.counts).astype(np.int64)
    return Postings(g[idx], doc_keys[idx], counts)


def merge_doc_postings(parts: list[Postings]) -> Postings:
    """Merge per-chunk term-to-doc postings into one sorted set.

    Different chunks contain different documents, so after a stable
    (gid, doc) sort, equal pairs are adjacent; aggregation handles the
    degenerate case of duplicates defensively.
    """
    merged = Postings.concatenate(parts)
    if len(merged) == 0:
        return merged
    order = np.lexsort((merged.keys, merged.gids))
    g = merged.gids[order]
    k = merged.keys[order]
    c = merged.counts[order]
    boundary = np.empty(g.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (g[1:] != g[:-1]) | (k[1:] != k[:-1])
    idx = np.flatnonzero(boundary)
    seg = np.cumsum(boundary) - 1
    counts = np.bincount(seg, weights=c).astype(np.int64)
    return Postings(g[idx], k[idx], counts)


def invert_bruteforce(
    gids: np.ndarray, doc_ids: np.ndarray, field_ids: np.ndarray
) -> tuple[dict, dict]:
    """Oracle inversion used by tests: plain dict counting."""
    t2f: dict[tuple[int, int], int] = {}
    t2d: dict[tuple[int, int], int] = {}
    for g, d, f in zip(gids, doc_ids, field_ids):
        t2f[(int(g), int(f))] = t2f.get((int(g), int(f)), 0) + 1
        t2d[(int(g), int(d))] = t2d.get((int(g), int(d)), 0) + 1
    return t2f, t2d
