"""Knowledge signature generation: topicality, association, DocVecs."""

from .association import (
    association_matrix,
    cooccurrence_counts,
    doc_presence_indices,
)
from .docvec import SignatureBatch, compute_signatures, major_lookup_arrays
from .topicality import (
    RankedTerm,
    condensation_scores,
    local_candidates,
    rank_candidates,
    select_major_terms,
)

__all__ = [
    "RankedTerm",
    "SignatureBatch",
    "association_matrix",
    "compute_signatures",
    "condensation_scores",
    "cooccurrence_counts",
    "doc_presence_indices",
    "local_candidates",
    "major_lookup_arrays",
    "rank_candidates",
    "select_major_terms",
]
