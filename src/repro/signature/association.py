"""Association matrix: relating topic terms to major terms.

Paper §3.4 (steps 5-6): an N x M matrix relates the N major terms to
the M topic dimensions, with entries being "the conditional
probabilities of occupance, modified by the independent probability of
occurrence".  We implement the positive excess association

    A[i, j] = max(0,  P(topic_j | major_i) - P(topic_j))

where ``P(topic_j | major_i) = |docs with both| / df(major_i)`` and
``P(topic_j) = df(topic_j) / D``.  The subtraction of the independent
probability zeroes out coincidental co-occurrence, and clipping keeps
signature components non-negative so the L1 normalization of document
vectors is well defined.  A topic term's own row carries the strongest
self-association (``P = 1``), anchoring that dimension.

Each process accumulates co-occurrence counts over its local documents
only; the integer partial matrices are summed with ``MPI_Allreduce``,
making the final matrix bit-identical for every processor count.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


def doc_presence_indices(
    doc_gids: np.ndarray,
    major_gids_sorted: np.ndarray,
    major_positions: np.ndarray,
) -> np.ndarray:
    """Indices (into the canonical major ranking) present in a document.

    ``major_gids_sorted`` is the ascending array of major-term dense
    gids; ``major_positions[k]`` maps the k-th sorted gid back to its
    rank in the canonical (score-ordered) major list.
    """
    if doc_gids.size == 0 or major_gids_sorted.size == 0:
        return np.empty(0, dtype=np.int64)
    pos = np.searchsorted(major_gids_sorted, doc_gids)
    pos = np.clip(pos, 0, major_gids_sorted.size - 1)
    hit = major_gids_sorted[pos] == doc_gids
    return np.unique(major_positions[pos[hit]])


def cooccurrence_counts(
    docs_major_indices: Iterable[np.ndarray],
    n_major: int,
    n_topics: int,
) -> np.ndarray:
    """Count documents containing (major_i, topic_j) pairs.

    Topics are the first ``n_topics`` entries of the major ranking, so
    a document's topic indices are its major indices below that cut.
    Returns an int64 ``(n_major, n_topics)`` matrix.
    """
    counts = np.zeros((n_major, n_topics), dtype=np.int64)
    for mi in docs_major_indices:
        if mi.size == 0:
            continue
        ti = mi[mi < n_topics]
        if ti.size == 0:
            continue
        counts[np.ix_(mi, ti)] += 1
    return counts


def association_matrix(
    counts: np.ndarray,
    df_major: np.ndarray,
    df_topic: np.ndarray,
    n_docs: int,
) -> np.ndarray:
    """Positive excess association from global co-occurrence counts."""
    n_major, n_topics = counts.shape
    if df_major.shape != (n_major,) or df_topic.shape != (n_topics,):
        raise ValueError("df vectors must match the counts shape")
    df_major = np.asarray(df_major, dtype=np.float64)
    cond = counts / np.maximum(df_major[:, None], 1.0)
    indep = np.asarray(df_topic, dtype=np.float64) / max(1, n_docs)
    return np.clip(cond - indep[None, :], 0.0, None)
