"""Knowledge signatures (DocVecs).

Paper §3.4: "Knowledge signatures are numerical vectors based on the
dimensions of the top M topics.  ... For each term that exists in that
record, we obtain the row within the association matrix.  These rows
represent a term vector that when linearly combined with other term
vectors and then normalized we form a signature of that record.
During the linear combination, each term vector is multiplied by the
frequency of that term within that record. ... Each signature is
normalized based on a L1 Norm."

A record with no major terms (or whose combined vector is zero) has a
*null signature* -- the phenomenon whose prevalence triggers the
paper's adaptive-dimensionality remedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class SignatureBatch:
    """Signatures for a batch of documents, plus null accounting."""

    #: (ndocs, M) L1-normalized signatures; null rows are all-zero
    signatures: np.ndarray
    #: boolean mask of null signatures
    null_mask: np.ndarray

    @property
    def n_null(self) -> int:
        return int(self.null_mask.sum())


def compute_signatures(
    doc_gid_arrays: list[np.ndarray],
    major_gids_sorted: np.ndarray,
    major_positions: np.ndarray,
    association: np.ndarray,
    doc_weight_arrays: Optional[list[np.ndarray]] = None,
) -> SignatureBatch:
    """L1-normalized frequency-weighted signature per document.

    Parameters mirror :func:`repro.signature.association.doc_presence_indices`;
    ``association`` is the global (n_major, n_topics) matrix.

    ``doc_weight_arrays`` (optional, aligned token-for-token with
    ``doc_gid_arrays``) lets the engine weight occurrences by their
    field -- e.g. counting title terms several times, the standard
    IN-SPIRE-style emphasis of high-signal fields.  Omitted, every
    occurrence counts once.
    """
    n_major, n_topics = association.shape
    ndocs = len(doc_gid_arrays)
    out = np.zeros((ndocs, n_topics), dtype=np.float64)
    null_mask = np.zeros(ndocs, dtype=bool)
    for i, gids in enumerate(doc_gid_arrays):
        if gids.size and major_gids_sorted.size:
            pos = np.searchsorted(major_gids_sorted, gids)
            pos = np.clip(pos, 0, major_gids_sorted.size - 1)
            hit = major_gids_sorted[pos] == gids
            rows = major_positions[pos[hit]]
            if rows.size:
                if doc_weight_arrays is not None:
                    weights = np.asarray(
                        doc_weight_arrays[i], dtype=np.float64
                    )
                    if weights.shape != gids.shape:
                        raise ValueError(
                            "doc weights must align with doc gids"
                        )
                    tf = np.bincount(
                        rows, weights=weights[hit], minlength=n_major
                    )
                else:
                    tf = np.bincount(rows, minlength=n_major).astype(
                        np.float64
                    )
                sig = tf @ association
                norm = sig.sum()
                if norm > 0.0:
                    out[i] = sig / norm
                    continue
        null_mask[i] = True
    return SignatureBatch(signatures=out, null_mask=null_mask)


def major_lookup_arrays(
    major_gids: list[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted-gid lookup arrays for the canonical major ranking.

    Returns ``(major_gids_sorted, major_positions)`` such that
    ``major_positions[k]`` is the canonical rank of the k-th smallest
    gid.
    """
    gids = np.asarray(major_gids, dtype=np.int64)
    order = np.argsort(gids)
    # sorted[k] == gids[order[k]], whose canonical rank is order[k]
    return gids[order], order.astype(np.int64)
