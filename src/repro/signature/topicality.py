"""Topicality: Bookstein serial-clustering condensation measure.

Paper §3.4: "Topicality is a measure that defines discriminating terms
within a set of documents.  Our approach to compute topicality is based
on Bookstein's serial clustering method" (Bookstein, Klein & Raita,
SIGIR 1992).  Content-bearing words *clump*: their occurrences
concentrate in few documents, while function words scatter randomly.

We use the condensation form of the measure: if a term's ``cf``
occurrences were scattered uniformly at random over ``D`` documents,
the expected number of distinct documents hit is

    E[df] = D * (1 - (1 - 1/D) ** cf)

with variance approximately ``D * q * (1 - q)`` for the per-document
occupancy probability ``q``.  The topicality score is the z-score of
the observed *condensation* ``E[df] - df``: strongly positive for
clumped (content-bearing) terms, near zero for random scatter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_EPS = 1e-12


def condensation_scores(
    df: np.ndarray, cf: np.ndarray, n_docs: int
) -> np.ndarray:
    """Vectorized Bookstein condensation z-scores.

    Terms with ``df == 0`` get ``-inf`` so they never rank.
    """
    if n_docs < 1:
        return np.full(df.shape, -np.inf)
    df = np.asarray(df, dtype=np.float64)
    cf = np.asarray(cf, dtype=np.float64)
    d = float(n_docs)
    # occupancy probability of one document under random scatter
    q = 1.0 - np.power(1.0 - 1.0 / d, cf)
    expected_df = d * q
    var = d * q * (1.0 - q)
    z = (expected_df - df) / np.sqrt(var + _EPS)
    return np.where(df > 0, z, -np.inf)


@dataclass(frozen=True)
class RankedTerm:
    """One candidate major term with the stats later stages need."""

    term: str
    gid: int
    score: float
    df: int
    cf: int

    def sort_key(self) -> tuple[float, str]:
        """Canonical ranking key: score descending, term ascending.

        Breaking ties on the term *string* (never on the gid) keeps the
        ranking identical across processor counts, where gid numbering
        differs.
        """
        return (-self.score, self.term)


def rank_candidates(candidates: list[RankedTerm]) -> list[RankedTerm]:
    """Sort candidates by the canonical (score desc, term asc) order."""
    # decorate-sort-undecorate: plain tuple comparison avoids one
    # Python-level sort_key call per element; the input index keeps
    # the sort stable, matching sorted(key=RankedTerm.sort_key)
    decorated = [
        (-c.score, c.term, i) for i, c in enumerate(candidates)
    ]
    decorated.sort()
    return [candidates[i] for _, _, i in decorated]


def local_candidates(
    terms: list[str],
    gid_lo: int,
    df: np.ndarray,
    cf: np.ndarray,
    n_docs: int,
    min_df: int,
    limit: int,
    max_df_fraction: float = 1.0,
) -> list[RankedTerm]:
    """A rank's top candidate major terms from its owned stats block.

    ``terms[i]`` corresponds to dense gid ``gid_lo + i``.  Because each
    owner contributes its own top ``limit``, the global top ``limit``
    is contained in the union of the per-owner candidate lists.

    ``max_df_fraction`` optionally drops boilerplate terms that appear
    in more than that fraction of the documents (they carry no
    discriminating power and only widen the association matrix).
    """
    scores = condensation_scores(df, cf, n_docs)
    df_cap = max(min_df, int(np.floor(max_df_fraction * n_docs)))
    eligible = np.flatnonzero((df >= min_df) & (df <= df_cap))
    if eligible.size == 0:
        return []
    if eligible.size > limit:
        # cheap pre-selection before the exact sort
        part = np.argpartition(-scores[eligible], limit - 1)[:limit]
        eligible = eligible[part]
    cands = [
        RankedTerm(
            term=terms[i],
            gid=gid_lo + int(i),
            score=float(scores[i]),
            df=int(df[i]),
            cf=int(cf[i]),
        )
        for i in eligible
    ]
    return rank_candidates(cands)[:limit]


def select_major_terms(
    candidates: list[RankedTerm], n_major: int, topic_fraction: float
) -> tuple[list[RankedTerm], list[RankedTerm]]:
    """Global selection: top N major terms, top M of those as topics.

    Paper §3.4: from the top N terms by topicality ("major terms") the
    top M (typically 10% of N) become the anchoring dimensions that
    discriminate the topic space.
    """
    ranked = rank_candidates(candidates)
    majors = ranked[: max(0, n_major)]
    if not majors:
        return [], []
    n_topics = max(2, int(round(len(majors) * topic_fraction)))
    n_topics = min(n_topics, len(majors))
    topics = majors[:n_topics]
    return majors, topics
