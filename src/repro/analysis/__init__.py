"""Interactive analysis over engine results (paper's "next frontier")."""

from .parallel import Query, QueryAnswer, run_query_batch
from .session import AnalysisSession, ClusterSummary, DocumentHit

__all__ = [
    "AnalysisSession",
    "ClusterSummary",
    "DocumentHit",
    "Query",
    "QueryAnswer",
    "run_query_batch",
]
