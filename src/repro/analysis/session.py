"""Interactive analysis over the engine's products.

The paper's conclusion names "the interactions associated with massive
datasets within a visual analytics environment" as the next frontier.
This module implements that layer over an :class:`EngineResult`: the
spatial and semantic queries an analyst issues against a ThemeView --
probing a region of the landscape, finding documents similar to one
being read, summarising a cluster, ranking documents against query
terms, and running tf·icf term search over an attached postings index.

All queries are vectorized over the persisted signatures/coordinates,
so they run interactively even for large collections.

Scoring kernels live at module level and are **shared with the serving
layer** (:mod:`repro.serve.query`): a shard executes exactly these
functions over its slice of the document rows, and every per-document
float is computed row-locally (or accumulated in query-term order), so
shard-parallel answers are bit-identical to this single-result path.
Ordering is always (score, global document row) with a *stable* sort,
never an unstable partial sort, so top-k results do not depend on how
the rows were split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine.results import EngineResult
from repro.index.termindex import (
    TermPostings,
    accumulate_tficf,
    icf_weights,
)


# ----------------------------------------------------------------------
# scoring kernels (shared with repro.serve.query)
# ----------------------------------------------------------------------
def unit_rows(sigs: np.ndarray) -> np.ndarray:
    """L2-normalize signature rows (null-safe).

    Each row is normalized independently, so normalizing a shard's
    slice yields bit-identical rows to normalizing the full matrix.
    """
    norms = np.linalg.norm(sigs, axis=1, keepdims=True)
    return np.divide(sigs, np.where(norms > 0, norms, 1.0))


def topk_desc(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, ties broken by index.

    A stable sort on descending score: the canonical result order of
    every ranked query, identical across shard layouts (the merge key
    is (-score, global row)).
    """
    return np.argsort(-scores, kind="stable")[:k]


def topk_asc(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest scores, ties broken by index."""
    return np.argsort(scores, kind="stable")[:k]


def cosine_scores(unit: np.ndarray, unit_query: np.ndarray) -> np.ndarray:
    """Cosine similarity of each (unit) row against a unit query.

    Deliberately an elementwise multiply + per-row ``np.sum`` rather
    than a BLAS matvec: gemv kernels switch accumulation strategy with
    the row count, which perturbs last-ulp results when the matrix is
    split across shards.  The per-row pairwise reduction depends only
    on the row length, so shard slices score bit-identically to the
    full matrix.
    """
    return np.sum(unit * unit_query, axis=1)


def pseudo_signature(
    association: np.ndarray, term_rows: list[int]
) -> Optional[np.ndarray]:
    """Unit pseudo-signature of a bag of known query terms.

    The association-matrix rows of the query terms are combined and
    L1-normalized exactly the way a document signature is built; the
    result is then L2-normalized for cosine scoring.  ``None`` when the
    combination has no mass.
    """
    if not term_rows:
        return None
    sig = association[term_rows].sum(axis=0)
    total = sig.sum()
    if total <= 0:
        return None
    sig = sig / total
    return sig / (np.linalg.norm(sig) or 1.0)


def top_positive_terms(
    weights: np.ndarray, names: list[str], n_terms: int
) -> list[str]:
    """The ``n_terms`` strongest strictly-positive dimensions, stably
    ordered by (weight desc, dimension asc)."""
    order = np.argsort(-weights, kind="stable")[:n_terms]
    return [names[j] for j in order if weights[j] > 0]


def centroid_distances(
    sigs: np.ndarray, centroid: np.ndarray
) -> np.ndarray:
    """Squared distance of each signature row to one centroid."""
    return np.sum((sigs - centroid) ** 2, axis=1)


def point_distances(coords: np.ndarray, x: float, y: float) -> np.ndarray:
    """Squared 2-D distance of each document to a landscape point."""
    point = np.array([x, y], dtype=np.float64)
    return np.sum((coords[:, :2] - point) ** 2, axis=1)


@dataclass(frozen=True)
class DocumentHit:
    """One document returned by a query, with its relevance score."""

    doc_id: int
    score: float
    cluster: int


@dataclass(frozen=True)
class ClusterSummary:
    """Descriptive statistics of one thematic grouping."""

    cluster: int
    size: int
    top_terms: list[str]
    representative_docs: list[int]
    centroid_norm: float


class AnalysisSession:
    """Query layer over one engine run's results.

    ``postings`` optionally attaches a major-term inverted index (see
    :func:`repro.index.termindex.build_term_postings`), enabling
    :meth:`term_search`.
    """

    def __init__(
        self,
        result: EngineResult,
        postings: Optional[TermPostings] = None,
    ):
        if result.signatures is None:
            raise ValueError(
                "AnalysisSession needs signatures; run the engine with "
                "keep_signatures=True"
            )
        self.result = result
        self._sigs = result.signatures
        self._coords = result.coords
        self._assignments = result.assignments
        self._doc_ids = result.doc_ids
        # L2-normalized signatures for cosine similarity (null-safe)
        self._unit = unit_rows(self._sigs)
        self._term_row = {
            t.term: i for i, t in enumerate(result.major_terms)
        }
        self._postings: Optional[TermPostings] = None
        self._icf: Optional[np.ndarray] = None
        if postings is not None:
            self.attach_postings(postings)

    def attach_postings(self, postings: TermPostings) -> None:
        """Attach a term->document index for :meth:`term_search`."""
        if postings.n_docs != len(self._doc_ids):
            raise ValueError(
                f"postings cover {postings.n_docs} documents but the "
                f"result has {len(self._doc_ids)}"
            )
        self._postings = postings
        self._icf = icf_weights(
            np.array([t.df for t in self.result.major_terms]),
            self.result.n_docs,
        )

    def _hits(self, idx: np.ndarray, scores: np.ndarray) -> list[DocumentHit]:
        return [
            DocumentHit(
                doc_id=int(self._doc_ids[i]),
                score=float(scores[i]),
                cluster=int(self._assignments[i]),
            )
            for i in idx
        ]

    # ------------------------------------------------------------------
    # spatial queries (ThemeView interactions)
    # ------------------------------------------------------------------
    def nearest_documents(self, x: float, y: float, k: int = 10) -> list[DocumentHit]:
        """The ``k`` documents closest to a point of the landscape."""
        k = min(max(1, k), len(self._doc_ids))
        d2 = point_distances(self._coords, x, y)
        idx = topk_asc(d2, k)
        return self._hits(idx, -np.sqrt(d2))

    def region_terms(
        self, x: float, y: float, radius: float, n_terms: int = 6
    ) -> list[str]:
        """Dominant topic terms of the documents inside a circle.

        This is the "what is this mountain about?" interaction: the
        mean signature of the region's documents names its strongest
        topic dimensions.
        """
        d2 = point_distances(self._coords, x, y)
        mask = d2 <= radius * radius
        if not mask.any():
            return []
        mean_sig = self._sigs[mask].mean(axis=0)
        return top_positive_terms(
            mean_sig, self.result.topic_term_strings, n_terms
        )

    # ------------------------------------------------------------------
    # semantic queries (signature space)
    # ------------------------------------------------------------------
    def _row_of_doc(self, doc_id: int) -> int:
        rows = np.flatnonzero(self._doc_ids == doc_id)
        if rows.size == 0:
            raise KeyError(f"unknown doc_id {doc_id}")
        return int(rows[0])

    def similar_documents(
        self, doc_id: int, k: int = 10, include_self: bool = False
    ) -> list[DocumentHit]:
        """Documents most similar (cosine over signatures) to one doc."""
        row = self._row_of_doc(doc_id)
        sims = cosine_scores(self._unit, self._unit[row])
        if not include_self:
            sims[row] = -np.inf
        k = min(max(1, k), len(sims) - (0 if include_self else 1))
        idx = topk_desc(sims, k)
        return self._hits(idx, sims)

    def query(self, terms: list[str], k: int = 10) -> list[DocumentHit]:
        """Rank documents against a bag of query terms.

        The query is turned into a pseudo-signature exactly the way a
        document would be: the association-matrix rows of the known
        query terms are combined and L1-normalized.  Unknown terms
        (outside the major-term model) are ignored; an empty overlap
        returns no hits.
        """
        rows = [self._term_row[t] for t in terms if t in self._term_row]
        unit = pseudo_signature(self.result.association, rows)
        if unit is None:
            return []
        sims = cosine_scores(self._unit, unit)
        k = min(max(1, k), len(sims))
        idx = topk_desc(sims, k)
        return self._hits(idx, sims)

    def term_search(self, terms: list[str], k: int = 10) -> list[DocumentHit]:
        """Ranked term search: tf·icf over the major-term postings.

        Each document scores the sum over matching query terms of its
        term frequency times the term's inverse collection frequency;
        only documents containing at least one query term are returned.
        Requires an attached postings index (see
        :meth:`attach_postings`).
        """
        if self._postings is None or self._icf is None:
            raise ValueError(
                "term_search needs a postings index; build one with "
                "repro.index.termindex.build_term_postings and attach it"
            )
        rows = [self._term_row[t] for t in terms if t in self._term_row]
        if not rows:
            return []
        scores = np.zeros(len(self._doc_ids), dtype=np.float64)
        accumulate_tficf(self._postings, rows, self._icf, scores)
        k = min(max(1, k), len(scores))
        idx = topk_desc(scores, k)
        idx = idx[scores[idx] > 0]
        return self._hits(idx, scores)

    # ------------------------------------------------------------------
    # cluster-level interactions
    # ------------------------------------------------------------------
    def cluster_summary(
        self, cluster: int, n_terms: int = 6, n_docs: int = 5
    ) -> ClusterSummary:
        """Size, labels and representative documents of one cluster."""
        kmax = self.result.centroids.shape[0]
        if not 0 <= cluster < kmax:
            raise KeyError(f"cluster {cluster} out of range [0, {kmax})")
        centroid = self.result.centroids[cluster]
        members = np.flatnonzero(self._assignments == cluster)
        top_terms = top_positive_terms(
            centroid, self.result.topic_term_strings, n_terms
        )
        reps: list[int] = []
        if members.size:
            d2 = centroid_distances(self._sigs[members], centroid)
            take = min(n_docs, members.size)
            best = members[topk_asc(d2, take)]
            reps = [int(self._doc_ids[i]) for i in best]
        return ClusterSummary(
            cluster=cluster,
            size=int(members.size),
            top_terms=top_terms,
            representative_docs=reps,
            centroid_norm=float(np.linalg.norm(centroid)),
        )

    def describe_selection(
        self, doc_ids: list[int], n_terms: int = 6
    ) -> list[str]:
        """Discriminating topic terms of a brushed document selection.

        The analyst lassos a set of documents on the landscape and asks
        what distinguishes them: we return the topic dimensions where
        the selection's mean signature most exceeds the collection's
        mean (not merely its strongest dimensions, which may be
        collection-wide commonplaces).
        """
        rows = [self._row_of_doc(d) for d in doc_ids]
        if not rows:
            return []
        sel_mean = self._sigs[rows].mean(axis=0)
        all_mean = self._sigs.mean(axis=0)
        excess = sel_mean - all_mean
        return top_positive_terms(
            excess, self.result.topic_term_strings, n_terms
        )

    def outliers(self, k: int = 10) -> list[DocumentHit]:
        """Documents farthest from their cluster centroid.

        These are the weakly-themed documents an analyst may want to
        inspect individually (or the null signatures the adaptive-
        dimensionality remedy targets).
        """
        cents = self.result.centroids[self._assignments]
        d2 = np.sum((self._sigs - cents) ** 2, axis=1)
        k = min(max(1, k), len(d2))
        idx = topk_desc(d2, k)
        return self._hits(idx, np.sqrt(d2))
