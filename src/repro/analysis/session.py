"""Interactive analysis over the engine's products.

The paper's conclusion names "the interactions associated with massive
datasets within a visual analytics environment" as the next frontier.
This module implements that layer over an :class:`EngineResult`: the
spatial and semantic queries an analyst issues against a ThemeView --
probing a region of the landscape, finding documents similar to one
being read, summarising a cluster, and seeding a view from query terms.

All queries are vectorized over the persisted signatures/coordinates,
so they run interactively even for large collections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.results import EngineResult


@dataclass(frozen=True)
class DocumentHit:
    """One document returned by a query, with its relevance score."""

    doc_id: int
    score: float
    cluster: int


@dataclass(frozen=True)
class ClusterSummary:
    """Descriptive statistics of one thematic grouping."""

    cluster: int
    size: int
    top_terms: list[str]
    representative_docs: list[int]
    centroid_norm: float


class AnalysisSession:
    """Query layer over one engine run's results."""

    def __init__(self, result: EngineResult):
        if result.signatures is None:
            raise ValueError(
                "AnalysisSession needs signatures; run the engine with "
                "keep_signatures=True"
            )
        self.result = result
        self._sigs = result.signatures
        self._coords = result.coords
        self._assignments = result.assignments
        self._doc_ids = result.doc_ids
        # L2-normalized signatures for cosine similarity (null-safe)
        norms = np.linalg.norm(self._sigs, axis=1, keepdims=True)
        self._unit = np.divide(
            self._sigs,
            np.where(norms > 0, norms, 1.0),
        )
        self._term_row = {
            t.term: i for i, t in enumerate(result.major_terms)
        }

    # ------------------------------------------------------------------
    # spatial queries (ThemeView interactions)
    # ------------------------------------------------------------------
    def nearest_documents(self, x: float, y: float, k: int = 10) -> list[DocumentHit]:
        """The ``k`` documents closest to a point of the landscape."""
        k = min(max(1, k), len(self._doc_ids))
        point = np.array([x, y], dtype=np.float64)
        d2 = np.sum((self._coords[:, :2] - point) ** 2, axis=1)
        idx = np.argpartition(d2, k - 1)[:k]
        idx = idx[np.argsort(d2[idx])]
        return [
            DocumentHit(
                doc_id=int(self._doc_ids[i]),
                score=float(-np.sqrt(d2[i])),
                cluster=int(self._assignments[i]),
            )
            for i in idx
        ]

    def region_terms(
        self, x: float, y: float, radius: float, n_terms: int = 6
    ) -> list[str]:
        """Dominant topic terms of the documents inside a circle.

        This is the "what is this mountain about?" interaction: the
        mean signature of the region's documents names its strongest
        topic dimensions.
        """
        point = np.array([x, y], dtype=np.float64)
        d2 = np.sum((self._coords[:, :2] - point) ** 2, axis=1)
        mask = d2 <= radius * radius
        if not mask.any():
            return []
        mean_sig = self._sigs[mask].mean(axis=0)
        order = np.argsort(-mean_sig)[:n_terms]
        topics = self.result.topic_term_strings
        return [topics[j] for j in order if mean_sig[j] > 0]

    # ------------------------------------------------------------------
    # semantic queries (signature space)
    # ------------------------------------------------------------------
    def _row_of_doc(self, doc_id: int) -> int:
        rows = np.flatnonzero(self._doc_ids == doc_id)
        if rows.size == 0:
            raise KeyError(f"unknown doc_id {doc_id}")
        return int(rows[0])

    def similar_documents(
        self, doc_id: int, k: int = 10, include_self: bool = False
    ) -> list[DocumentHit]:
        """Documents most similar (cosine over signatures) to one doc."""
        row = self._row_of_doc(doc_id)
        sims = self._unit @ self._unit[row]
        if not include_self:
            sims[row] = -np.inf
        k = min(max(1, k), len(sims) - (0 if include_self else 1))
        idx = np.argpartition(-sims, k - 1)[:k]
        idx = idx[np.argsort(-sims[idx])]
        return [
            DocumentHit(
                doc_id=int(self._doc_ids[i]),
                score=float(sims[i]),
                cluster=int(self._assignments[i]),
            )
            for i in idx
        ]

    def query(self, terms: list[str], k: int = 10) -> list[DocumentHit]:
        """Rank documents against a bag of query terms.

        The query is turned into a pseudo-signature exactly the way a
        document would be: the association-matrix rows of the known
        query terms are combined and L1-normalized.  Unknown terms
        (outside the major-term model) are ignored; an empty overlap
        returns no hits.
        """
        rows = [self._term_row[t] for t in terms if t in self._term_row]
        if not rows:
            return []
        sig = self.result.association[rows].sum(axis=0)
        total = sig.sum()
        if total <= 0:
            return []
        sig = sig / total
        unit = sig / (np.linalg.norm(sig) or 1.0)
        sims = self._unit @ unit
        k = min(max(1, k), len(sims))
        idx = np.argpartition(-sims, k - 1)[:k]
        idx = idx[np.argsort(-sims[idx])]
        return [
            DocumentHit(
                doc_id=int(self._doc_ids[i]),
                score=float(sims[i]),
                cluster=int(self._assignments[i]),
            )
            for i in idx
        ]

    # ------------------------------------------------------------------
    # cluster-level interactions
    # ------------------------------------------------------------------
    def cluster_summary(
        self, cluster: int, n_terms: int = 6, n_docs: int = 5
    ) -> ClusterSummary:
        """Size, labels and representative documents of one cluster."""
        kmax = self.result.centroids.shape[0]
        if not 0 <= cluster < kmax:
            raise KeyError(f"cluster {cluster} out of range [0, {kmax})")
        centroid = self.result.centroids[cluster]
        members = np.flatnonzero(self._assignments == cluster)
        order = np.argsort(-centroid)[:n_terms]
        topics = self.result.topic_term_strings
        top_terms = [topics[j] for j in order if centroid[j] > 0]
        reps: list[int] = []
        if members.size:
            d2 = np.sum((self._sigs[members] - centroid) ** 2, axis=1)
            take = min(n_docs, members.size)
            best = members[np.argsort(d2)[:take]]
            reps = [int(self._doc_ids[i]) for i in best]
        return ClusterSummary(
            cluster=cluster,
            size=int(members.size),
            top_terms=top_terms,
            representative_docs=reps,
            centroid_norm=float(np.linalg.norm(centroid)),
        )

    def describe_selection(
        self, doc_ids: list[int], n_terms: int = 6
    ) -> list[str]:
        """Discriminating topic terms of a brushed document selection.

        The analyst lassos a set of documents on the landscape and asks
        what distinguishes them: we return the topic dimensions where
        the selection's mean signature most exceeds the collection's
        mean (not merely its strongest dimensions, which may be
        collection-wide commonplaces).
        """
        rows = [self._row_of_doc(d) for d in doc_ids]
        if not rows:
            return []
        sel_mean = self._sigs[rows].mean(axis=0)
        all_mean = self._sigs.mean(axis=0)
        excess = sel_mean - all_mean
        order = np.argsort(-excess)[:n_terms]
        topics = self.result.topic_term_strings
        return [topics[j] for j in order if excess[j] > 0]

    def outliers(self, k: int = 10) -> list[DocumentHit]:
        """Documents farthest from their cluster centroid.

        These are the weakly-themed documents an analyst may want to
        inspect individually (or the null signatures the adaptive-
        dimensionality remedy targets).
        """
        cents = self.result.centroids[self._assignments]
        d2 = np.sum((self._sigs - cents) ** 2, axis=1)
        k = min(max(1, k), len(d2))
        idx = np.argpartition(-d2, k - 1)[:k]
        idx = idx[np.argsort(-d2[idx])]
        return [
            DocumentHit(
                doc_id=int(self._doc_ids[i]),
                score=float(np.sqrt(d2[i])),
                cluster=int(self._assignments[i]),
            )
            for i in idx
        ]
