"""Parallel interactive queries over distributed signatures.

Paper §6: "The next frontier of this work is the interactions
associated with massive datasets within a visual analytics
environment.  To the best of our knowledge, interactions of this scale
on a parallel system have never been attempted."

This module attempts exactly that, on the simulated cluster: the
per-document knowledge signatures stay *distributed* (block-partitioned
by document, as the engine produced them), and each analyst query --
"more like this", term search, landscape probe -- executes SPMD:

1. rank 0 broadcasts the query,
2. every rank scores its local documents (vectorized),
3. each rank selects its local top-k,
4. a gather + merge at rank 0 yields the global top-k.

Per-query virtual latency therefore scales with ``n_docs / P`` --
which is what makes interaction on massive collections feasible.
:func:`run_query_batch` reports those latencies alongside the answers,
and the answers are bit-checked against the serial
:class:`~repro.analysis.session.AnalysisSession` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.engine.results import EngineResult
from repro.runtime import Cluster, MachineSpec, Scale
from repro.runtime.context import RankContext

from .session import DocumentHit


@dataclass(frozen=True)
class Query:
    """One analyst interaction.

    ``kind`` is one of:

    * ``"similar"`` -- args: (doc_id,), cosine over signatures;
    * ``"terms"``   -- args: (term, term, ...), association-row query;
    * ``"nearest"`` -- args: (x, y), spatial probe of the landscape.
    """

    kind: str
    args: tuple
    k: int = 10


@dataclass
class QueryAnswer:
    """Result of one query plus its virtual latency."""

    query: Query
    hits: list[DocumentHit]
    latency_s: float


def run_query_batch(
    result: EngineResult,
    queries: Sequence[Query],
    nprocs: int,
    machine: Optional[MachineSpec] = None,
) -> list[QueryAnswer]:
    """Execute ``queries`` against ``result`` on a simulated cluster.

    ``result`` must retain signatures.  Latencies are virtual seconds
    per query at the corpus's represented scale.
    """
    if result.signatures is None:
        raise ValueError("run_query_batch needs signatures on the result")
    for q in queries:
        if q.kind not in ("similar", "terms", "nearest"):
            raise ValueError(f"unknown query kind {q.kind!r}")
    machine = machine if machine is not None else MachineSpec()
    # distribute documents in contiguous blocks, as the engine does
    n = result.n_docs
    bounds = np.linspace(0, n, nprocs + 1).astype(np.int64)
    term_row = {t.term: i for i, t in enumerate(result.major_terms)}

    sim = Cluster(nprocs, machine).run(
        _query_rank_main,
        result,
        bounds,
        list(queries),
        term_row,
    )
    return sim.rank_results[0]


def _local_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the top-k scores, ordered descending."""
    if scores.size == 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, scores.size)
    idx = np.argpartition(-scores, k - 1)[:k]
    return idx[np.argsort(-scores[idx])]


def _query_rank_main(
    ctx: RankContext,
    result: EngineResult,
    bounds: np.ndarray,
    queries: list[Query],
    term_row: dict[str, int],
):
    lo, hi = int(bounds[ctx.rank]), int(bounds[ctx.rank + 1])
    sigs = result.signatures[lo:hi]
    coords = result.coords[lo:hi]
    doc_ids = result.doc_ids[lo:hi]
    clusters = result.assignments[lo:hi]
    norms = np.linalg.norm(sigs, axis=1, keepdims=True)
    unit = np.divide(sigs, np.where(norms > 0, norms, 1.0))
    m_dim = sigs.shape[1] if sigs.ndim == 2 else 1

    answers: list[QueryAnswer] = []
    for query in queries:
        ctx.barrier()
        t0 = ctx.now
        # 1. broadcast the query (tiny payload; rank 0 is the console)
        q: Query = ctx.comm.bcast(query if ctx.rank == 0 else None)
        # 2. local scoring
        if q.kind == "similar":
            (target,) = q.args
            owner = int(np.searchsorted(bounds, target, side="right") - 1)
            vec = ctx.comm.bcast(
                unit[target - lo] if ctx.rank == owner else None,
                root=owner,
            )
            scores = unit @ vec
            if lo <= target < hi:
                scores[target - lo] = -np.inf  # exclude self
        elif q.kind == "terms":
            rows = [term_row[t] for t in q.args if t in term_row]
            if rows:
                sig = result.association[rows].sum(axis=0)
                total = sig.sum()
                vec = (
                    sig / total / (np.linalg.norm(sig / total) or 1.0)
                    if total > 0
                    else None
                )
            else:
                vec = None
            scores = (
                unit @ vec
                if vec is not None
                else np.full(hi - lo, -np.inf)
            )
        else:  # nearest
            x, y = q.args
            d2 = np.sum(
                (coords[:, :2] - np.array([x, y])) ** 2, axis=1
            )
            scores = -np.sqrt(d2)
        ctx.charge(
            ctx.machine.flops_seconds(
                max(1, (hi - lo)) * m_dim * 2.0, Scale.STREAM
            )
        )
        # 3. local top-k
        local_idx = _local_topk(scores, q.k)
        contrib = [
            (
                float(scores[i]),
                int(doc_ids[i]),
                int(clusters[i]),
            )
            for i in local_idx
            if np.isfinite(scores[i])
        ]
        ctx.charge_cpu((hi - lo) + q.k * 20)
        # 4. gather + merge at the console rank
        gathered = ctx.comm.gather(contrib, root=0)
        answer: Any = None
        if ctx.rank == 0:
            merged = sorted(
                (c for part in gathered for c in part), reverse=True
            )[: q.k]
            hits = [
                DocumentHit(doc_id=d, score=s, cluster=c)
                for s, d, c in merged
            ]
            answer = hits
        ctx.barrier()
        latency = ctx.now - t0
        if ctx.rank == 0:
            answers.append(
                QueryAnswer(query=q, hits=answer, latency_s=latency)
            )
    return answers if ctx.rank == 0 else None
