"""Real-parallelism multiprocessing backend behind the SPMD API.

One OS process per rank runs the *identical* engine / GA / serve code
that the virtual-time simulator runs: the same ``RankContext``, the
same ``Communicator`` wrappers, the same cost model, the same fault
injector.  The backend substitutes the cross-rank plumbing only:

* global arrays live in ``multiprocessing.shared_memory`` segments so
  GA put/get/accumulate touch the same bytes from every process;
* point-to-point messages, collectives and GA hashmap sidebands flow
  through a parent-process *switchboard* (one request queue in, one
  reply queue per rank out);
* each rank keeps its own :class:`~repro.runtime.clock.VirtualClock`;
  every blocking operation carries the caller's virtual timestamp, and
  the switchboard resolves rendezvous in **virtual-time order** -- not
  real arrival order -- so modelled times, blocked-time accounting,
  metrics and fault semantics are bit-identical to the simulator's.

Determinism contract
--------------------
For fault-free runs the backend produces byte-identical results and
bit-identical metrics snapshots to the simulator: collectives complete
at ``max(arrival) + model cost`` with the last arriver defined by
``(virtual time, global rank)`` order exactly as the simulator's
min-clock turn rule yields; a receive counts as "message already
buffered" iff ``(send time, src) < (recv time, dst)`` lexicographically,
which is precisely when the simulator's turn order would have run the
send first.

Known, documented divergences (see docs/architecture.md §12): which
rank *raises* a ``CollectiveMismatchError``, recovery wall-clock
metadata after mid-run crashes, and alive-but-silent
``CommTimeoutError`` detection (the parent instead reports a deadlock
through its watchdog).  ``probe`` / ``recv_any`` / ``irecv`` are not
supported under mp (the engine does not use them).
"""

from __future__ import annotations

import os
import pickle
import warnings
from collections import deque
from multiprocessing import get_context, shared_memory
from queue import Empty
from typing import Any, Callable, Optional

import numpy as np

from .clock import VirtualClock
from .comm import Communicator, Message
from .context import RankContext
from .errors import (
    ClusterAborted,
    CollectiveMismatchError,
    CommTimeoutError,
    DeadlockError,
    RankCrashedError,
    RankFailedError,
    RuntimeMisuseError,
)
from .metrics import MetricsRegistry
from .payload import payload_nbytes
from .tracing import Tracer
from .world import World

_PROTO = pickle.HIGHEST_PROTOCOL

#: which payloads each collective kind must cross the process boundary:
#: "none" (pure synchronization), "from-root" (fan-out), "to-root"
#: (fan-in; non-root results are None), "all" (every rank needs every
#: payload and runs the finisher itself), "per-dest" (personalized:
#: each member ships one pre-pickled bucket per destination and
#: receives only its own column -- O(P) bytes instead of O(P^2)),
#: "fin-one" (rank-independent result: the last arriver alone runs the
#: finisher over all payloads and shares the single reduced value)
_SHIP = {
    "barrier": "none",
    "bcast": "from-root",
    "scatter": "from-root",
    "reduce": "to-root",
    "gather": "to-root",
    "allreduce": "fin-one",
    "allgather": "all",
    "scan": "all",
    "alltoallv": "per-dest",
}

_PASSTHROUGH_ERRORS = (DeadlockError, RankFailedError, CommTimeoutError)


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, _PROTO)


#: payloads at least this large travel as shared-memory segments
#: instead of bytes through the reply pipes; the cutover covers the
#: pipe-copy cost of pickling the same megabytes P times over
_SHM_BLOB_MIN = 1 << 16


def _stash_blob(blob: bytes):
    """Spill a large pickled payload into shared memory.

    Returns either the original ``bytes`` (small payloads) or a
    ``("shmblob", name, size)`` descriptor.  The switchboard routes the
    tiny descriptor instead of the bytes, so a payload fanned out to P
    receivers crosses the process boundary once, not P times; the
    parent unlinks every noted segment at teardown."""
    if len(blob) < _SHM_BLOB_MIN:
        return blob
    seg = shared_memory.SharedMemory(create=True, size=len(blob))
    seg.buf[: len(blob)] = blob
    name = seg.name
    seg.close()
    return ("shmblob", name, len(blob))


def _stash_payload(obj: Any):
    """Ship a payload: large numeric ndarrays go as raw shared-memory
    arrays (receivers map a zero-copy view -- no pickle at all, the
    moral equivalent of the simulator sharing the object), everything
    else as (possibly shm-spilled) pickle bytes."""
    if (
        isinstance(obj, np.ndarray)
        and obj.dtype != object
        and obj.nbytes >= _SHM_BLOB_MIN
    ):
        arr = obj if obj.flags.c_contiguous else np.ascontiguousarray(obj)
        seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        view[...] = arr
        name = seg.name
        del view
        seg.close()
        return ("shmarr", name, arr.shape, arr.dtype.str)
    return _stash_blob(_dumps(obj))


#: keeps attached segments mapped for the lifetime of any zero-copy
#: views handed to user code (per process; freed at process exit)
_SEG_REFS: list = []


def _load_blob(data) -> Any:
    """Materialize a payload shipped inline, as spilled pickle bytes,
    or as a raw shared-memory array (returned as a read-only view --
    cross-rank payloads are *shared* under the simulator, so writing
    to one was never legal)."""
    if type(data) is tuple:
        if data[0] == "shmarr":
            _tag, name, shape, dtype_str = data
            seg = shared_memory.SharedMemory(name=name)
            arr = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=seg.buf)
            arr.flags.writeable = False
            _SEG_REFS.append(seg)
            return arr
        _tag, name, size = data
        seg = shared_memory.SharedMemory(name=name)
        raw = bytes(seg.buf[:size])
        seg.close()
        return pickle.loads(raw)
    return pickle.loads(data)


# ----------------------------------------------------------------------
# child-side scheduler: per-process clocks, no turn-taking
# ----------------------------------------------------------------------
class MpScheduler:
    """The scheduler interface as seen from inside one rank process.

    There is no turn to take -- ranks really run concurrently -- so
    ``wait_turn`` reduces to the fault-injection hook and every blocking
    decision is delegated to the parent switchboard (which owns the
    virtual-time ordering).  The clock *list* mirrors the simulator's
    shape but only this rank's own entry ever advances.
    """

    def __init__(self, nprocs, rank, injector, metrics, board):
        self.nprocs = nprocs
        self.rank = rank
        self.injector = injector
        self.metrics = metrics
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self.blocked_time = [0.0] * nprocs
        #: shared death board: NaN = alive, else crash virtual time
        self._board = board

    def now(self, rank: int) -> float:
        return self.clocks[rank].now

    def advance(self, rank: int, dt: float) -> float:
        if self.injector is not None:
            dt = self.injector.scale_compute(
                rank, self.clocks[rank].now, dt
            )
        return self.clocks[rank].advance(dt)

    def wait_turn(self, rank: int) -> None:
        if self.injector is not None:
            self.injector.on_turn(rank, self.clocks[rank].now)

    @property
    def failed_at(self) -> dict[int, float]:
        b = self._board
        return {
            r: float(b[r]) for r in range(self.nprocs)
            if not np.isnan(b[r])
        }

    def failures_observed_by(self, rank: int) -> list[int]:
        lat = (
            self.injector.detection_latency_s
            if self.injector is not None
            else 0.0
        )
        now = self.clocks[rank].now
        return sorted(
            r for r, t in self.failed_at.items() if t + lat <= now
        )

    def _account_block(self, rank: int, dt: float) -> None:
        """Mirror of the simulator's single block-accounting point."""
        self.blocked_time[rank] += dt
        if self.metrics is not None:
            self.metrics.counter("sched.blocked_seconds").inc(rank, dt)
            self.metrics.histogram("sched.block_seconds").observe(rank, dt)


# ----------------------------------------------------------------------
# replicated / published stores backed by the switchboard
# ----------------------------------------------------------------------
class _MpReplicated:
    """Cross-process compute-once cache (``ctx.replicated``).

    Lookups consult a process-local cache first, then the parent.  The
    parent designates the *first* rank to miss as the computer (its
    reply is ``miss``, so ``RankContext.replicated`` runs ``fn()`` and
    stores the value back) and parks every later rank until the value
    arrives -- real compute-once, matching the simulator's shared dict
    and avoiding P redundant computations of e.g. the association
    matrix.  Values must pickle; ones that do not are flagged to the
    parent so parked ranks are released to recompute locally (still
    deterministic, just slower).

    This store is only ever driven by ``RankContext.replicated``'s
    strict miss-then-store sequence; a ``__getitem__`` miss obliges
    the caller to ``__setitem__`` the same key next.
    """

    def __init__(self, world: "MpWorld"):
        self._world = world
        self._local: dict[Any, Any] = {}

    def __getitem__(self, key: Any) -> Any:
        try:
            return self._local[key]
        except KeyError:
            pass
        reply = self._world._request(("repl-get", self._world.client_rank, key))
        if reply[0] != "hit":
            raise KeyError(key)
        value = _load_blob(reply[1])
        self._local[key] = value
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self._local[key] = value
        try:
            data = _stash_payload(value)
        except Exception:
            # unpicklable: tell the parent so parked ranks recompute
            data = None
        self._world._post(("repl-put", self._world.client_rank, key, data))

    def __contains__(self, key: Any) -> bool:
        try:
            self[key]
        except KeyError:
            return False
        return True

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


class _MpFwdStore:
    """Rank-indexed published-object store (``world.published_store``).

    Writes land locally and are forwarded to the parent; reads of other
    ranks' entries fetch (and cache) through the parent.  The engine's
    publish-then-barrier discipline makes the forwarded copy visible
    before any peer can legally read it.
    """

    def __init__(self, world: "MpWorld", key: str):
        self._world = world
        self._key = key
        self._local: dict[Any, Any] = {}

    def __getitem__(self, owner: Any) -> Any:
        try:
            return self._local[owner]
        except KeyError:
            pass
        reply = self._world._request(
            ("fwd-get", self._world.client_rank, self._key, owner)
        )
        if reply[0] != "fwd":
            raise KeyError(owner)
        value = _load_blob(reply[1])
        self._local[owner] = value
        return value

    def __setitem__(self, owner: Any, value: Any) -> None:
        self._local[owner] = value
        self._world._post(
            ("fwd-put", self._world.client_rank, self._key, owner,
             _stash_payload(value))
        )

    def __contains__(self, owner: Any) -> bool:
        try:
            self[owner]
        except KeyError:
            return False
        return True

    def get(self, owner: Any, default: Any = None) -> Any:
        try:
            return self[owner]
        except KeyError:
            return default


# ----------------------------------------------------------------------
# the world, as forked into every rank process
# ----------------------------------------------------------------------
class MpWorld(World):
    """Process-shared :class:`~repro.runtime.world.World`.

    Created in the parent *before* forking; each child then stamps its
    own ``client_rank`` and swaps in fresh per-process state
    (``metrics``, ``registry``, ``replicated``) in ``_child_main``.
    """

    backend = "mp"

    def __init__(self, nprocs: int, mpctx):
        super().__init__(nprocs)
        self._req_q = mpctx.Queue()
        self._reply_qs = [mpctx.SimpleQueue() for _ in range(nprocs)]
        self._ga_lock_mp = mpctx.Lock()
        self._board_shm = shared_memory.SharedMemory(
            create=True, size=8 * nprocs
        )
        board = np.ndarray((nprocs,), dtype=np.float64,
                           buffer=self._board_shm.buf)
        board[:] = np.nan
        #: filled in per child by ``_child_main``
        self.client_rank: Optional[int] = None
        self._reply_q = None
        self._board_view: Optional[np.ndarray] = None
        self._fwd_stores: dict[str, _MpFwdStore] = {}
        self._shm_refs: list[shared_memory.SharedMemory] = []

    # ------------------------------------------------------------------
    # child <-> switchboard plumbing
    # ------------------------------------------------------------------
    def _post(self, msg: tuple) -> None:
        """Fire-and-forget message to the switchboard."""
        self._req_q.put(msg)

    def _request(self, msg: tuple) -> tuple:
        """Round-trip to the switchboard; applies piggybacked hashmap
        sidebands before interpreting the reply."""
        self._req_q.put(msg)
        return self._get_reply()

    def _get_reply(self) -> tuple:
        sideband, msg = self._reply_q.get()
        if sideband:
            self._apply_sideband(sideband)
        if msg[0] == "abort":
            raise ClusterAborted("aborted: another rank failed")
        return msg

    def _apply_sideband(self, entries) -> None:
        """Replay remote hashmap inserts into this process's shard.

        The switchboard attaches pending sidebands to *every* reply, and
        collective releases are replies, so replayed inserts are always
        applied before the barrier that makes them legally visible.
        """
        from repro.ga.hashmap import _OwnerState

        me = self.client_rank
        for name, batch in entries:
            key = f"hashmap:{name}"
            shards = self.registry.get(key)
            if shards is None:
                # this process has not reached the collective create
                # yet; pre-create the shard list the same factory would
                shards = [_OwnerState() for _ in range(self.nprocs)]
                self.registry[key] = shards
            shard = shards[me]
            for term in batch:
                if term not in shard.table:
                    shard.table[term] = (
                        shard.next_local * self.nprocs + me
                    )
                    shard.next_local += 1

    def _dead_ranks(self) -> list[int]:
        b = self._board_view
        if b is None:
            return []
        return sorted(
            r for r in range(self.nprocs) if not np.isnan(b[r])
        )

    # ------------------------------------------------------------------
    # backend hooks
    # ------------------------------------------------------------------
    def make_comm(self, sched, machine, rank: int):
        return MpCommunicator(self, sched, machine, rank)

    def alloc_ndarray(self, key: str, shape, fill, dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        shape_t = (
            tuple(int(s) for s in shape)
            if isinstance(shape, (tuple, list))
            else (int(shape),)
        )
        reply = self._request(
            ("alloc", self.client_rank, key, shape_t, fill, dt.str)
        )
        shm = shared_memory.SharedMemory(name=reply[1])
        self._shm_refs.append(shm)
        return np.ndarray(shape_t, dtype=dt, buffer=shm.buf)

    @property
    def ga_lock(self):
        return self._ga_lock_mp

    def published_store(self, key: str):
        store = self._fwd_stores.get(key)
        if store is None:
            store = self._fwd_stores[key] = _MpFwdStore(self, key)
        return store

    def publish_store(self, key: str, rank: int, value: Any) -> None:
        self.published_store(key)[rank] = value

    def post_hashmap_sideband(self, name: str, owner: int, batch) -> None:
        self._post(
            ("sideband", self.client_rank, name, owner, list(batch))
        )

    def oob_allgather(self, key: Any, value: Any) -> list:
        reply = self._request(("oob", self.client_rank, key, value))
        if reply[0] == "rankfailed":
            dead = self._dead_ranks()
            raise RankFailedError(dead, "dlb plan out-of-band exchange")
        return reply[1]


# ----------------------------------------------------------------------
# communicator: identical modelled semantics, switchboard transport
# ----------------------------------------------------------------------
class MpCommunicator(Communicator):
    """Per-rank endpoint whose rendezvous run through the switchboard.

    Every virtual-time formula here is copied from the simulator's
    :class:`~repro.runtime.comm.Communicator`; only the transport
    differs.  Self-sends keep the simulator's in-process fast path.
    """

    #: callers that fan out (broker tiers) select a deterministic
    #: sequential-recv path when this is False
    supports_recv_any = False

    # -- point to point -------------------------------------------------
    def send(self, dest: int, obj: Any, tag: int = 0) -> None:
        self._check_peer(dest)
        self.sched.wait_turn(self._grank)
        dest_g = self._g(dest)
        to_self = dest_g == self._grank
        nbytes = payload_nbytes(obj)
        sender_dt, transit_dt = self.machine.p2p_seconds(
            nbytes,
            intra_node=(
                True if to_self
                else self.machine.same_node(self._grank, dest_g)
            ),
        )
        now = self.sched.now(self._grank)
        if self.sched.injector is not None:
            transit_dt = self.sched.injector.adjust_transit(
                self._grank, dest_g, now, transit_dt
            )
        arrival = now + transit_dt
        if to_self:
            box = self._box(self.rank, tag, dst_local=dest)
            box.append(Message(obj, arrival, nbytes))
        else:
            mkey = (self._ctx_key, self._grank, dest_g, tag)
            self.world._post(
                ("p2p-send", self._grank, mkey, now, arrival, nbytes,
                 _stash_payload(obj))
            )
        self._m_p2p_msgs.inc(self._grank, key=(dest_g, "sent"))
        self._m_p2p_bytes.inc(self._grank, nbytes, key=(dest_g, "sent"))
        self.sched.advance(self._grank, sender_dt)

    def recv(
        self, source: int, tag: int = 0, timeout: Optional[float] = None
    ) -> Any:
        self._check_peer(source)
        self.sched.wait_turn(self._grank)
        src_g = self._g(source)
        clock = self.sched.clocks[self._grank]
        if src_g == self._grank:
            box = self._box(source, tag)
            if not box:
                raise RuntimeMisuseError(
                    f"rank {self._grank}: recv from self with no "
                    f"buffered message under the mp backend"
                )
            msg = box.popleft()
            now = self.sched.now(self._grank)
            done = max(now, msg.arrival) + self.machine.recv_overhead_seconds()
            clock.advance_to(done)
            self._account_recv(src_g, msg.nbytes)
            return msg.obj
        now = self.sched.now(self._grank)
        detail = f"recv(src={source}, tag={tag})"
        eff = self._effective_timeout(timeout)
        mkey = (self._ctx_key, src_g, self._grank, tag)
        reply = self.world._request(
            ("p2p-recv", self._grank, mkey, now, eff)
        )
        if reply[0] == "p2p-timeout":
            clock.advance_to(reply[1])
            self.sched._account_block(self._grank, clock.now - now)
            self._raise_timeout(detail, [src_g], eff)
        _t, buffered, arrival, nbytes, blob = reply
        obj = _load_blob(blob)
        if buffered:
            # virtually the message was waiting: the simulator's
            # non-blocking receive path (no blocked-time accounting)
            done = max(now, arrival) + self.machine.recv_overhead_seconds()
            clock.advance_to(done)
        else:
            clock.advance_to(
                arrival + self.machine.recv_overhead_seconds()
            )
            self.sched._account_block(self._grank, clock.now - now)
        self._account_recv(src_g, nbytes)
        return obj

    def probe(self, source: int, tag: int = 0) -> bool:
        raise RuntimeMisuseError(
            "probe() is not supported under the mp backend"
        )

    def recv_any(self, sources=None, tag: int = 0, timeout=None):
        raise RuntimeMisuseError(
            "recv_any() is not supported under the mp backend"
        )

    def irecv(self, source: int, tag: int = 0):
        raise RuntimeMisuseError(
            "irecv() is not supported under the mp backend"
        )

    # -- collectives ----------------------------------------------------
    def _collective(
        self,
        kind: str,
        payload: Any,
        nbytes: Optional[float] = None,
        finisher: Optional[Callable[[list[Any]], list[Any]]] = None,
        nbytes_hint: Optional[float] = None,
        root: Optional[int] = None,
    ) -> Any:
        self.sched.wait_turn(self._grank)
        seq = self._coll_seq
        self._coll_seq += 1
        gate_key = (self._ctx_key, seq)
        now = self.sched.now(self._grank)
        my_size: Optional[float] = nbytes
        if my_size is None and nbytes_hint is None:
            my_size = float(payload_nbytes(payload))
        self._m_coll_calls.inc(self._grank, key=(kind,))
        self._m_coll_bytes.inc(
            self._grank,
            my_size if my_size is not None else float(nbytes_hint or 0.0),
            key=(kind,),
        )
        ship = _SHIP.get(kind, "all")
        if ship in ("from-root", "to-root") and root is None:
            ship = "all"
        blob = None
        if ship == "per-dest":
            blob = [_stash_payload(payload[d]) for d in range(self.nprocs)]
        elif (
            ship in ("all", "fin-one")
            or (ship == "from-root" and self.rank == root)
            or (ship == "to-root" and self.rank != root)
        ):
            blob = _stash_payload(payload)
        reply = self.world._request(
            ("coll", self._grank, gate_key, kind, tuple(self._group),
             self.rank, root, ship, now, blob, my_size, nbytes_hint)
        )
        clock = self.sched.clocks[self._grank]
        if reply[0] == "coll-mismatch":
            raise CollectiveMismatchError(
                f"rank {self.rank} called {kind!r} as collective #{seq} "
                f"but another rank called {reply[1]!r}"
            )
        if reply[0] == "rankfailed":
            clock.advance_to(reply[1])
            self.sched._account_block(self._grank, clock.now - now)
            detail = f"{kind} (collective #{seq})"
            eff = self._effective_timeout(None)
            involved = [self._g(r) for r in range(self.nprocs)]
            self._raise_timeout(detail, involved, eff)
        _t, is_last, done, data = reply
        clock.advance_to(done)
        if not is_last:
            self.sched._account_block(self._grank, clock.now - now)
        if finisher is None:
            return None
        n = self.nprocs
        if ship == "from-root":
            payloads: list[Any] = [None] * n
            payloads[root] = (
                payload if self.rank == root else _load_blob(data)
            )
            return finisher(payloads)[self.rank]
        if ship == "to-root":
            if self.rank != root:
                return None
            payloads = [
                payload if r == root else _load_blob(data[r])
                for r in range(n)
            ]
            return finisher(payloads)[self.rank]
        if ship == "per-dest":
            # ``data`` holds only this rank's column of the exchange;
            # reconstructing it directly is bit-identical to the
            # generic transpose finisher (alltoallv is the only
            # per-dest kind) with own entries never pickled
            return [
                payload[self.rank] if r == self.rank else _load_blob(data[r])
                for r in range(n)
            ]
        if ship == "fin-one":
            if n == 1:
                return finisher([payload])[self.rank]
            if is_last:
                # the last arriver is the designated finisher: reduce
                # all payloads once and share the (rank-independent)
                # result, instead of every member unpickling every
                # payload -- O(P) bytes instead of O(P^2)
                payloads = [
                    payload if r == self.rank else _load_blob(data[r])
                    for r in range(n)
                ]
                out = finisher(payloads)
                self.world._post(
                    ("coll-fin", self._grank, gate_key,
                     _stash_payload(out[self.rank]))
                )
                return out[self.rank]
            reply2 = self.world._get_reply()
            if reply2[0] != "coll-fin":  # pragma: no cover - protocol
                raise RuntimeError(
                    f"expected coll-fin reply, got {reply2[0]!r}"
                )
            out_mine = _load_blob(reply2[1])
            if (
                isinstance(out_mine, np.ndarray)
                and not out_mine.flags.writeable
            ):
                # the simulator's allreduce hands each rank a private
                # copy of the reduced array; match that ownership
                out_mine = out_mine.copy()
            return out_mine
        payloads = [
            payload if r == self.rank else _load_blob(data[r])
            for r in range(n)
        ]
        return finisher(payloads)[self.rank]


# ----------------------------------------------------------------------
# child entry point
# ----------------------------------------------------------------------
def _child_main(world, rank, machine, injector, fn, args, kwargs):
    prof = None
    if os.environ.get("REPRO_MP_PROFILE"):
        import cProfile
        import time as _time

        prof = cProfile.Profile(_time.process_time)
        prof.enable()
    try:
        _child_body(world, rank, machine, injector, fn, args, kwargs)
    finally:
        if prof is not None:
            prof.disable()
            prof.dump_stats(
                f"{os.environ['REPRO_MP_PROFILE']}/child{rank}.prof"
            )


def _child_body(world, rank, machine, injector, fn, args, kwargs):
    world.client_rank = rank
    world._reply_q = world._reply_qs[rank]
    world.metrics = MetricsRegistry(world.nprocs)
    world.registry = {}
    world.replicated = _MpReplicated(world)
    world._fwd_stores = {}
    world._shm_refs = []
    world.mailboxes = {}
    world.recv_waiters = {}
    world.gates = {}
    tracer = Tracer(world.nprocs)
    board = np.ndarray(
        (world.nprocs,), dtype=np.float64, buffer=world._board_shm.buf
    )
    world._board_view = board
    sched = MpScheduler(world.nprocs, rank, injector, world.metrics, board)
    pending0: list = []
    if injector is not None:
        injector.start_run(world.nprocs, tracer)
        pending0 = list(injector._pending_crashes)
    ctx = RankContext(rank, world, sched, machine, tracer)
    clock = sched.clocks[rank]
    try:
        # one turn-hook call before user code, as spawn_ranks does
        sched.wait_turn(rank)
        result = fn(ctx, *args, **kwargs)
        world._post(
            ("done", rank, clock.now, sched.blocked_time[rank], result,
             world.metrics, tracer)
        )
    except RankCrashedError as crash:
        board[rank] = crash.at_time
        fired = [
            f for f in pending0
            if f not in injector._pending_crashes
        ]
        world._post(
            ("crashed", rank, crash.at_time, sched.blocked_time[rank],
             fired, world.metrics, tracer)
        )
    except ClusterAborted:
        world._post(("abort-ack", rank))
    except BaseException as exc:  # noqa: BLE001 - forwarded to parent
        try:
            blob = _dumps(exc)
        except Exception:
            blob = None
        world._post(("failed", rank, clock.now, blob, repr(exc)))


# ----------------------------------------------------------------------
# parent switchboard
# ----------------------------------------------------------------------
class _Gate:
    __slots__ = ("kind", "group", "root", "ship", "arrivals")

    def __init__(self, kind, group, root, ship):
        self.kind = kind
        self.group = group
        self.root = root
        self.ship = ship
        #: local rank -> (virtual arrival, blob, measured size, hint)
        self.arrivals: dict[int, tuple] = {}


class _Switchboard:
    """Parent-process resolver of all cross-rank rendezvous.

    Single-threaded: it drains one request queue and replies through
    per-rank queues, so every decision (gate completion order, receive
    matching, death timeouts) is made at one place in virtual-time
    order, independent of real scheduling."""

    def __init__(self, world: MpWorld, machine, injector, procs):
        self.world = world
        self.nprocs = world.nprocs
        self.machine = machine
        self.injector = injector
        self.procs = procs
        self._board = np.ndarray(
            (self.nprocs,), dtype=np.float64, buffer=world._board_shm.buf
        )
        self._gates: dict[tuple, _Gate] = {}
        self._mail: dict[tuple, deque] = {}
        self._parked_recv: dict[tuple, tuple] = {}
        self._oob: dict[Any, dict[int, Any]] = {}
        self._fwd: dict[tuple, bytes] = {}
        self._repl: dict[Any, Any] = {}
        #: key -> rank currently designated to compute the value
        self._repl_computing: dict[Any, int] = {}
        #: key -> ranks parked until the computer's repl-put arrives
        self._repl_waiters: dict[Any, list[int]] = {}
        #: keys whose values did not pickle: every rank computes locally
        self._repl_nopickle: set = set()
        #: gate key -> ranks awaiting the finisher's coll-fin result
        self._fin_pending: dict[tuple, list[int]] = {}
        self._allocs: dict[str, shared_memory.SharedMemory] = {}
        #: shared-memory payload segments seen in transit, unlinked at
        #: teardown (their lifetime is the run, their count is bounded
        #: by the number of large payloads)
        self._blob_names: list[str] = []
        self._sideband: dict[int, list] = {}
        self._parked: dict[int, str] = {}
        self._death: dict[int, float] = {}
        self._terminal: set[int] = set()
        self._aborted: set[int] = set()
        self._results: dict[int, Any] = {}
        self._clocks_done: dict[int, float] = {}
        self._blocked: dict[int, float] = {}
        self._metrics_parts: dict[int, MetricsRegistry] = {}
        self._tracer_parts: dict[int, Tracer] = {}
        self._last_clock = [0.0] * self.nprocs
        self._error: Optional[tuple] = None
        self._suspect: dict[int, int] = {}

    # -- plumbing -------------------------------------------------------
    def _send(self, rank: int, msg: tuple) -> None:
        sideband = self._sideband.pop(rank, [])
        self.world._reply_qs[rank].put((sideband, msg))

    def _clock_seen(self, rank: int, t: float) -> None:
        if t > self._last_clock[rank]:
            self._last_clock[rank] = t

    # -- main loop ------------------------------------------------------
    def loop(self) -> None:
        q = self.world._req_q
        while len(self._terminal) < self.nprocs:
            try:
                msg = q.get(timeout=0.5)
            except Empty:
                self._on_idle()
                continue
            self._dispatch(msg)

    def _note_blob(self, data) -> None:
        """Record shared-memory payload segments for teardown unlink."""
        if type(data) is tuple:
            self._blob_names.append(data[1])
        elif type(data) is list:
            for entry in data:
                if type(entry) is tuple:
                    self._blob_names.append(entry[1])

    def _dispatch(self, msg: tuple) -> None:
        kind, rank = msg[0], msg[1]
        # note payload segments before any drop path so aborted ranks'
        # in-flight blobs still get unlinked at teardown
        if kind == "coll":
            self._note_blob(msg[9])
        elif kind == "coll-fin":
            self._note_blob(msg[3])
        elif kind == "p2p-send":
            self._note_blob(msg[6])
        elif kind == "repl-put":
            self._note_blob(msg[3])
        elif kind == "fwd-put":
            self._note_blob(msg[4])
        if kind == "done":
            self._on_done(*msg[1:])
            return
        if kind == "crashed":
            self._on_crashed(*msg[1:])
            return
        if kind == "failed":
            self._on_failed(*msg[1:])
            return
        if kind == "abort-ack":
            self._terminal.add(rank)
            return
        if rank in self._aborted:
            # the rank already has an abort queued as its next reply;
            # drop whatever it was asking for
            return
        if kind == "coll":
            self._on_coll(*msg[1:])
        elif kind == "coll-fin":
            for r in self._fin_pending.pop(msg[2], []):
                if r not in self._aborted:
                    self._send(r, ("coll-fin", msg[3]))
        elif kind == "p2p-send":
            self._on_p2p_send(*msg[1:])
        elif kind == "p2p-recv":
            self._on_p2p_recv(*msg[1:])
        elif kind == "alloc":
            self._on_alloc(*msg[1:])
        elif kind == "oob":
            self._on_oob(*msg[1:])
        elif kind == "repl-get":
            key = msg[2]
            data = self._repl.get(key)
            if data is not None:
                self._send(rank, ("hit", data))
            elif key in self._repl_nopickle:
                self._send(rank, ("miss",))
            elif key in self._repl_computing:
                # someone is already computing this value: park the
                # requester until the repl-put arrives (real time only;
                # virtual clocks are charged by the caller regardless)
                self._repl_waiters.setdefault(key, []).append(rank)
                self._parked[rank] = f"replicated {key!r}"
            else:
                self._repl_computing[key] = rank
                self._send(rank, ("miss",))
        elif kind == "repl-put":
            self._on_repl_put(msg[2], msg[3])
        elif kind == "fwd-put":
            _r, key, owner, blob = msg[1:]
            self._fwd[(key, owner)] = blob
        elif kind == "fwd-get":
            _r, key, owner = msg[1:]
            blob = self._fwd.get((key, owner))
            if blob is None:
                self._send(rank, ("fwd-miss",))
            else:
                self._send(rank, ("fwd", blob))
        elif kind == "sideband":
            _r, name, owner, batch = msg[1:]
            self._sideband.setdefault(owner, []).append((name, batch))
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unknown switchboard message {kind!r}")

    # -- idle: watchdog + deadlock detection ----------------------------
    def _on_idle(self) -> None:
        for r in range(self.nprocs):
            if r in self._terminal:
                continue
            p = self.procs[r]
            if not p.is_alive():
                # grace rounds: a terminal message may still be in the
                # pipe right after the process exited
                self._suspect[r] = self._suspect.get(r, 0) + 1
                if self._suspect[r] >= 3:
                    self._terminal.add(r)
                    if self._error is None:
                        self._error = (
                            r, None,
                            f"worker process died unexpectedly "
                            f"(exitcode {p.exitcode})",
                        )
                    self._abort_everyone()
            else:
                self._suspect.pop(r, None)
        if self._error is not None:
            return
        waiting = [r for r in range((self.nprocs)) if r not in self._terminal]
        if waiting and all(r in self._parked for r in waiting):
            # every live rank is parked and the queue is drained:
            # nothing can ever complete
            blocked = {r: self._parked[r] for r in waiting}
            clocks = {r: self._last_clock[r] for r in waiting}
            self._error = (None, DeadlockError(blocked, clocks, {}), "")
            self._abort_everyone()

    def _abort_everyone(self) -> None:
        for r in range(self.nprocs):
            if r in self._terminal or r in self._aborted:
                continue
            self._aborted.add(r)
            self._parked.pop(r, None)
            # keep abort replies sideband-free so the put can never
            # block on a rank that is still computing
            self.world._reply_qs[r].put(([], ("abort",)))

    # -- terminal messages ----------------------------------------------
    def _on_done(self, rank, clock, blocked, result, metrics, tracer):
        self._terminal.add(rank)
        self._results[rank] = result
        self._clocks_done[rank] = clock
        self._blocked[rank] = blocked
        self._metrics_parts[rank] = metrics
        self._tracer_parts[rank] = tracer
        self._clock_seen(rank, clock)

    def _on_crashed(self, rank, at_time, blocked, fired, metrics, tracer):
        self._death[rank] = at_time
        self._board[rank] = at_time
        if self.injector is not None:
            for f in fired:
                try:
                    self.injector._pending_crashes.remove(f)
                except ValueError:
                    pass
        self._terminal.add(rank)
        self._blocked[rank] = blocked
        self._metrics_parts[rank] = metrics
        self._tracer_parts[rank] = tracer
        self._clock_seen(rank, at_time)
        for gkey in list(self._gates):
            self._eval_gate(gkey)
        for key in list(self._oob):
            self._eval_oob(key)
        for mkey, (dst, r_now, eff) in list(self._parked_recv.items()):
            if mkey[1] == rank and eff is not None:
                del self._parked_recv[mkey]
                self._parked.pop(dst, None)
                self._send(dst, ("p2p-timeout", r_now + eff))
        # promote a waiter if the dead rank was computing a replicated
        # value, so parked ranks are never stranded
        for key, computer in list(self._repl_computing.items()):
            if computer != rank:
                continue
            del self._repl_computing[key]
            waiters = self._repl_waiters.get(key)
            if waiters:
                w = waiters.pop(0)
                self._repl_computing[key] = w
                self._parked.pop(w, None)
                self._send(w, ("miss",))
            if not waiters:
                self._repl_waiters.pop(key, None)

    def _on_failed(self, rank, clock, blob, reprstr):
        self._terminal.add(rank)
        self._clock_seen(rank, clock)
        if self._error is None:
            exc = None
            if blob is not None:
                try:
                    exc = pickle.loads(blob)
                except Exception:
                    exc = None
            self._error = (rank, exc, reprstr)
        self._abort_everyone()

    # -- collectives ----------------------------------------------------
    def _on_coll(self, rank, gate_key, kind, group, local, root, ship,
                 t, blob, size, hint):
        self._clock_seen(rank, t)
        g = self._gates.get(gate_key)
        if g is None:
            g = self._gates[gate_key] = _Gate(kind, group, root, ship)
        elif g.kind != kind:
            self._send(rank, ("coll-mismatch", g.kind))
            return
        g.arrivals[local] = (t, blob, size, hint)
        self._parked[rank] = f"{kind} (collective #{gate_key[-1]})"
        self._eval_gate(gate_key)

    def _eval_gate(self, gate_key) -> None:
        g = self._gates.get(gate_key)
        if g is None:
            return
        n = len(g.group)
        if len(g.arrivals) == n:
            self._release_gate(gate_key, g)
            return
        dead = [m for m in g.group if m in self._death]
        if not dead:
            return
        arrived = {g.group[l] for l in g.arrivals}
        if any(
            m not in arrived and m not in self._death for m in g.group
        ):
            return  # a live member may still arrive (and may win)
        eff = self.world.comm_timeout
        if eff is None:
            return  # no timeout: stays parked, watchdog reports deadlock
        items = sorted(
            g.arrivals.items(),
            key=lambda kv: (kv[1][0] + eff, g.group[kv[0]]),
        )
        win_local, (win_t, _b, _s, _h) = items[0]
        for l, _arr in items:
            r = g.group[l]
            self._parked.pop(r, None)
            if l == win_local:
                self._send(r, ("rankfailed", win_t + eff))
            else:
                self._aborted.add(r)
                self._send(r, ("abort",))
        del self._gates[gate_key]

    def _release_gate(self, gate_key, g: _Gate) -> None:
        n = len(g.group)
        last_local = max(
            g.arrivals, key=lambda l: (g.arrivals[l][0], g.group[l])
        )
        t_last, _b, _s, hint_last = g.arrivals[last_local]
        size = hint_last
        if size is None:
            size = max(
                s for (_t, _blob, s, _h) in g.arrivals.values()
                if s is not None
            )
        t0 = max(t for (t, _blob, _s, _h) in g.arrivals.values())
        done = t0 + self.machine.collective_seconds(
            g.kind, n, float(size)
        )
        if g.ship in ("all", "fin-one"):
            blobs = [g.arrivals[l][1] for l in range(n)]
        for l in range(n):
            r = g.group[l]
            if g.ship == "none":
                data = None
            elif g.ship == "from-root":
                data = None if l == g.root else g.arrivals[g.root][1]
            elif g.ship == "to-root":
                data = (
                    [g.arrivals[j][1] for j in range(n)]
                    if l == g.root else None
                )
            elif g.ship == "per-dest":
                # member l only needs its own column of the exchange
                data = [g.arrivals[j][1][l] for j in range(n)]
            elif g.ship == "fin-one":
                # only the designated finisher (the last arriver)
                # receives the payloads; everyone else waits for its
                # coll-fin result as a second reply
                data = blobs if l == last_local else None
            else:
                data = blobs
            self._parked.pop(r, None)
            self._send(r, ("coll-go", l == last_local, done, data))
        if g.ship == "fin-one" and n > 1:
            self._fin_pending[gate_key] = [
                g.group[l] for l in range(n) if l != last_local
            ]
        del self._gates[gate_key]

    # -- out-of-band allgather (DLB planning) ---------------------------
    def _on_oob(self, rank, key, value):
        vals = self._oob.setdefault(key, {})
        vals[rank] = value
        self._parked[rank] = f"oob allgather {key!r}"
        self._eval_oob(key)

    def _eval_oob(self, key) -> None:
        vals = self._oob.get(key)
        if vals is None:
            return
        live = [r for r in range(self.nprocs) if r not in self._death]
        if not all(r in vals for r in live):
            return
        if len(live) < self.nprocs:
            for r in list(vals):
                self._parked.pop(r, None)
                self._send(r, ("rankfailed", None))
        else:
            out = [vals[r] for r in range(self.nprocs)]
            for r in range(self.nprocs):
                self._parked.pop(r, None)
                self._send(r, ("oob-go", out))
        del self._oob[key]

    # -- point to point -------------------------------------------------
    def _on_p2p_send(self, rank, mkey, s_now, arrival, nbytes, blob):
        self._clock_seen(rank, s_now)
        parked = self._parked_recv.pop(mkey, None)
        if parked is not None:
            dst, r_now, _eff = parked
            self._parked.pop(dst, None)
            buffered = (s_now, mkey[1]) < (r_now, mkey[2])
            self._send(dst, ("msg", buffered, arrival, nbytes, blob))
        else:
            self._mail.setdefault(mkey, deque()).append(
                (s_now, arrival, nbytes, blob)
            )

    def _on_p2p_recv(self, rank, mkey, r_now, eff):
        self._clock_seen(rank, r_now)
        box = self._mail.get(mkey)
        if box:
            s_now, arrival, nbytes, blob = box.popleft()
            if not box:
                del self._mail[mkey]
            buffered = (s_now, mkey[1]) < (r_now, mkey[2])
            self._send(rank, ("msg", buffered, arrival, nbytes, blob))
            return
        src = mkey[1]
        if src in self._death and eff is not None:
            self._send(rank, ("p2p-timeout", r_now + eff))
            return
        self._parked_recv[mkey] = (rank, r_now, eff)
        self._parked[rank] = f"recv(src={src}, tag={mkey[3]})"

    # -- shared-memory allocation --------------------------------------
    def _on_alloc(self, rank, key, shape, fill, dtype_str):
        shm = self._allocs.get(key)
        if shm is None:
            dt = np.dtype(dtype_str)
            size = max(1, int(np.prod(shape)) * dt.itemsize)
            shm = shared_memory.SharedMemory(create=True, size=size)
            view = np.ndarray(shape, dtype=dt, buffer=shm.buf)
            view[...] = fill
            del view
            self._allocs[key] = shm
        self._send(rank, ("shm", shm.name))

    # -- replicated compute-once store ----------------------------------
    def _on_repl_put(self, key, data) -> None:
        self._repl_computing.pop(key, None)
        waiters = self._repl_waiters.pop(key, [])
        if data is None:
            # the value did not pickle: release waiters to recompute
            # locally, and short-circuit future getters the same way
            self._repl_nopickle.add(key)
            for w in waiters:
                self._parked.pop(w, None)
                self._send(w, ("miss",))
            return
        stored = self._repl.setdefault(key, data)
        for w in waiters:
            self._parked.pop(w, None)
            self._send(w, ("hit", stored))

    # -- completion -----------------------------------------------------
    def finish(self, raise_on_failure: bool):
        from .cluster import ClusterResult

        n = self.nprocs
        if self._error is not None:
            rank, exc, reprstr = self._error
            if isinstance(exc, _PASSTHROUGH_ERRORS):
                if (
                    isinstance(exc, RankFailedError)
                    and exc.rank_times is None
                ):
                    exc.rank_times = np.array(self._last_clock)
                raise exc
            if exc is not None:
                raise RuntimeError(
                    f"rank {rank} failed: {exc!r}"
                ) from exc
            raise RuntimeError(f"rank {rank} failed: {reprstr}")
        times = np.array([
            self._clocks_done.get(r, self._death.get(r, 0.0))
            for r in range(n)
        ])
        failed = sorted(self._death)
        if failed and raise_on_failure:
            exc = RankFailedError(failed, "run completion")
            exc.rank_times = times
            raise exc
        return ClusterResult(
            nprocs=n,
            rank_results=[self._results.get(r) for r in range(n)],
            rank_times=times,
            blocked_times=np.array(
                [self._blocked.get(r, 0.0) for r in range(n)]
            ),
            tracer=_merge_tracers(n, self._tracer_parts),
            failed_ranks=failed,
            metrics=_merge_metrics(n, self._metrics_parts),
        )

    def release_shm(self) -> None:
        for shm in self._allocs.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._allocs.clear()
        for name in self._blob_names:
            try:
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._blob_names.clear()


# ----------------------------------------------------------------------
# splicing per-process metrics / traces into one registry
# ----------------------------------------------------------------------
def _merge_metrics(
    nprocs: int, parts: dict[int, MetricsRegistry]
) -> MetricsRegistry:
    """Splice each rank's slice of its private registry into one.

    Every per-rank value in a child registry lives at that child's own
    rank index, so the merge is a pure column copy; the snapshot's
    canonical sorting then makes the result bit-identical to the
    simulator's shared registry."""
    merged = MetricsRegistry(nprocs)
    for r in range(nprocs):
        part = parts.get(r)
        if part is None:
            continue
        for name, fam in part._families.items():
            mf = merged._family(name, fam.kind, fam.label_names, fam.bounds)
            mf.per_rank[r] = fam.per_rank[r]
        for stage, st in part._stages.items():
            mst = merged._stages.get(stage)
            if mst is None:
                mst = merged._stages[stage] = {
                    "seconds": [0.0] * nprocs,
                    "blocked_seconds": [0.0] * nprocs,
                    "counters": {},
                }
            mst["seconds"][r] = st["seconds"][r]
            mst["blocked_seconds"][r] = st["blocked_seconds"][r]
            for name, d in st["counters"].items():
                md = mst["counters"].setdefault(name, {})
                for rk, v in d.items():
                    if rk[0] == r:
                        md[rk] = v
    return merged


def _merge_tracers(nprocs: int, parts: dict[int, Tracer]) -> Tracer:
    merged = Tracer(nprocs)
    for r in range(nprocs):
        part = parts.get(r)
        if part is None:
            continue
        merged.spans.extend(
            s for s in part.spans if s.rank == r
        )
        merged.instants.extend(
            i for i in part.instants if i.rank == r
        )
        merged.wall_spans.extend(
            s for s in part.wall_spans if s.rank == r
        )
    return merged


# ----------------------------------------------------------------------
# driver entry point (called by Cluster.run)
# ----------------------------------------------------------------------
def run_mp(
    nprocs: int,
    machine,
    injector,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    raise_on_failure: bool = True,
):
    """Run ``fn(ctx, *args, **kwargs)`` on ``nprocs`` OS processes.

    Drop-in equivalent of the simulator path of
    :meth:`repro.runtime.cluster.Cluster.run`: same result object, same
    virtual times, same exceptions."""
    # pre-import lazy numpy submodules the engine touches (np.unique
    # pulls in numpy.ma on first use); importing before the fork makes
    # every child inherit them instead of paying the import P times
    import numpy.ma  # noqa: F401

    mpctx = get_context("fork")
    world = MpWorld(nprocs, mpctx)
    if injector is not None:
        world.comm_timeout = injector.comm_timeout_s
    procs = []
    board = _Switchboard(world, machine, injector, procs)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for r in range(nprocs):
                p = mpctx.Process(
                    target=_child_main,
                    args=(world, r, machine, injector, fn, args, kwargs),
                    name=f"repro-mp-rank-{r}",
                    daemon=True,
                )
                p.start()
                procs.append(p)
        board.loop()
    finally:
        for p in procs:
            p.join(timeout=10.0)
        leftover = [p for p in procs if p.is_alive()]
        for p in leftover:
            p.terminate()
        for p in leftover:
            p.join(timeout=5.0)
        for p in procs:
            p.close()
        world._req_q.close()
        board.release_shm()
        try:
            world._board_shm.close()
            world._board_shm.unlink()
        except FileNotFoundError:
            pass
    return board.finish(raise_on_failure)
