"""Per-rank execution context handed to SPMD program functions.

A simulated SPMD program is a plain Python function ``fn(ctx, ...)``;
the :class:`RankContext` is its window onto the cluster: identity,
virtual clock charging, communication, RPC, tracing, and the machine
cost model.  Global Arrays structures (:mod:`repro.ga`) are built on
top of this context.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

from .errors import RankFailedError, TransientRpcError
from .machine import MachineSpec, Scale
from .payload import payload_nbytes
from .scheduler import Scheduler
from .tracing import Tracer
from .world import World


class RankContext:
    """Everything one rank needs to participate in a simulated run."""

    def __init__(
        self,
        rank: int,
        world: World,
        sched: Scheduler,
        machine: MachineSpec,
        tracer: Tracer,
    ):
        self.rank = rank
        self.nprocs = world.nprocs
        self.world = world
        self.sched = sched
        self.machine = machine
        self.tracer = tracer
        self.metrics = world.metrics
        self.comm = world.make_comm(sched, machine, rank)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """This rank's current virtual time in seconds."""
        return self.sched.now(self.rank)

    def charge(self, seconds: float) -> None:
        """Charge raw virtual seconds of local work to this rank."""
        self.sched.advance(self.rank, seconds)

    def charge_cpu(self, nops: float, scale: Scale = Scale.FIXED) -> None:
        self.charge(self.machine.cpu_seconds(nops, scale))

    def charge_flops(self, nflops: float, scale: Scale = Scale.FIXED) -> None:
        self.charge(self.machine.flops_seconds(nflops, scale))

    def charge_io(
        self,
        nbytes: float,
        concurrent_readers: Optional[int] = None,
        scale: Scale = Scale.STREAM,
    ) -> None:
        readers = self.nprocs if concurrent_readers is None else concurrent_readers
        dt = self.machine.io_seconds(nbytes, readers, scale)
        if self.sched.injector is not None:
            dt = self.sched.injector.adjust_io(self.rank, self.now, dt)
        self.charge(dt)

    def sync(self) -> None:
        """A pure synchronization point: yield the turn.

        Charges advance the clock but never hand execution to another
        rank -- a rank doing only local work runs to completion in one
        turn.  Ranks whose *side effects* must become visible to
        lower-clock peers in virtual-time order (e.g. the ingest driver
        publishing store generations) call this after each effect so
        the min-clock rule covers it.  Returns with the turn held.
        """
        self.comm.sched.wait_turn(self.comm._grank)

    def replicated(self, key, fn):
        """Compute-once cache for deterministically replicated work.

        SPMD stages often have every rank compute the *same* pure
        function of the *same* globally-reduced inputs (a merged
        candidate sort, an association matrix from allreduced counts,
        a PCA fit of replicated centroids).  In a real cluster that
        work runs concurrently on P nodes; under the simulator the P
        copies serialize on the GIL and multiply real wall-clock cost
        by P for zero information.  This helper lets the first rank to
        reach the site compute ``fn()`` and every later rank reuse the
        shared result.

        Correctness contract (caller's obligation):

        - ``fn`` must be a pure, deterministic function of data that
          is bit-identical on every rank at this point (e.g. outputs
          of ``allreduce``/``allgather``), so the value cannot depend
          on which rank happens to run it.
        - ``key`` must uniquely name the site and stage instance
          (include loop indices for per-iteration sites).
        - The returned object is *shared* across ranks: treat it as
          read-only.

        Virtual-time charges are unaffected -- callers charge the
        modelled cost of the replicated work on every rank exactly as
        before, so simulated timings are bit-identical whether or not
        the real computation was reused.
        """
        memo = self.world.replicated
        try:
            return memo[key]
        except KeyError:
            value = fn()
            memo[key] = value
            return value

    # ------------------------------------------------------------------
    # one-sided / RPC
    # ------------------------------------------------------------------
    def rpc(
        self,
        target: int,
        handler: Callable[..., Any],
        *args: Any,
        nbytes_out: Optional[float] = None,
        nbytes_in: float = 64.0,
    ) -> Any:
        """Execute ``handler(*args)`` against rank ``target``'s state.

        Models an ARMCI-style active message: the caller pays the
        round-trip; the handler runs atomically at the target (the
        scheduler's global ordering makes this trivially consistent).
        Calls to one's own rank cost only the handler time.

        Under fault injection an RPC to a crashed target raises
        :class:`RankFailedError` (after paying the round trip spent
        discovering the death), and designated calls flake with
        :class:`TransientRpcError` for idempotent callers to retry.
        """
        self.sched.wait_turn(self.rank)
        inj = self.sched.injector
        if inj is not None and target != self.rank:
            if target in self.sched.failed_at:
                self.charge(self.machine.rpc_seconds(64.0, 64.0))
                raise RankFailedError([target], f"rpc to rank {target}")
            if inj.rpc_fails(self.rank, target, self.now):
                out = payload_nbytes(args) if nbytes_out is None else nbytes_out
                self.charge(self.machine.rpc_seconds(out, nbytes_in))
                self._record_rpc(target, out, nbytes_in)
                raise TransientRpcError(
                    f"rank {self.rank}: rpc to rank {target} flaked"
                )
        result = handler(*args)
        if target == self.rank:
            self.charge(self.machine.rpc_handler_cost_s)
            self.metrics.counter("comm.rpc.calls", ("peer",)).inc(
                self.rank, key=(target,)
            )
        else:
            out = payload_nbytes(args) if nbytes_out is None else nbytes_out
            self.charge(self.machine.rpc_seconds(out, nbytes_in))
            self._record_rpc(target, out, nbytes_in)
        return result

    def _record_rpc(self, target: int, out: float, inbytes: float) -> None:
        """Count one RPC attempt (including flaked ones) to ``target``."""
        m = self.metrics
        m.counter("comm.rpc.calls", ("peer",)).inc(self.rank, key=(target,))
        fam = m.counter("comm.rpc.bytes", ("peer", "dir"))
        fam.inc(self.rank, float(out), key=(target, "out"))
        fam.inc(self.rank, float(inbytes), key=(target, "in"))

    # ------------------------------------------------------------------
    # failure detection
    # ------------------------------------------------------------------
    def failed_ranks(self) -> list[int]:
        """Crashed ranks whose death this rank can observe by now.

        A heartbeat-style detector: a crash becomes visible one
        detection latency after it happened (in virtual time).  Without
        fault injection this is always empty.
        """
        self.sched.wait_turn(self.rank)
        return self.sched.failures_observed_by(self.rank)

    def is_alive(self, rank: int) -> bool:
        """Whether ``rank`` is believed alive by the failure detector."""
        return rank not in self.failed_ranks()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Context manager recording a named virtual-time region.

        Besides the trace span, the region captures this rank's metric
        movement -- elapsed and blocked virtual seconds plus every
        counter delta -- into the per-stage section of the metrics
        snapshot.  Capture happens in a ``finally`` so a stage that
        dies mid-flight (fault injection) still reports the partial
        work deterministically.
        """
        clock = self.sched.clocks[self.rank]
        t0 = clock.now
        blocked0 = self.sched.blocked_time[self.rank]
        before = self.metrics.rank_totals(self.rank)
        try:
            with self.tracer.region(self.rank, name, clock):
                yield
        finally:
            self.metrics.record_stage(
                name,
                self.rank,
                clock.now - t0,
                self.sched.blocked_time[self.rank] - blocked0,
                self.metrics.rank_deltas(self.rank, before),
            )

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankContext(rank={self.rank}, nprocs={self.nprocs})"
