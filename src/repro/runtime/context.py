"""Per-rank execution context handed to SPMD program functions.

A simulated SPMD program is a plain Python function ``fn(ctx, ...)``;
the :class:`RankContext` is its window onto the cluster: identity,
virtual clock charging, communication, RPC, tracing, and the machine
cost model.  Global Arrays structures (:mod:`repro.ga`) are built on
top of this context.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from .comm import Communicator
from .machine import MachineSpec, Scale
from .payload import payload_nbytes
from .scheduler import Scheduler
from .tracing import Tracer
from .world import World


class RankContext:
    """Everything one rank needs to participate in a simulated run."""

    def __init__(
        self,
        rank: int,
        world: World,
        sched: Scheduler,
        machine: MachineSpec,
        tracer: Tracer,
    ):
        self.rank = rank
        self.nprocs = world.nprocs
        self.world = world
        self.sched = sched
        self.machine = machine
        self.tracer = tracer
        self.comm = Communicator(world, sched, machine, rank)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """This rank's current virtual time in seconds."""
        return self.sched.now(self.rank)

    def charge(self, seconds: float) -> None:
        """Charge raw virtual seconds of local work to this rank."""
        self.sched.advance(self.rank, seconds)

    def charge_cpu(self, nops: float, scale: Scale = Scale.FIXED) -> None:
        self.charge(self.machine.cpu_seconds(nops, scale))

    def charge_flops(self, nflops: float, scale: Scale = Scale.FIXED) -> None:
        self.charge(self.machine.flops_seconds(nflops, scale))

    def charge_io(
        self,
        nbytes: float,
        concurrent_readers: Optional[int] = None,
        scale: Scale = Scale.STREAM,
    ) -> None:
        readers = self.nprocs if concurrent_readers is None else concurrent_readers
        self.charge(self.machine.io_seconds(nbytes, readers, scale))

    # ------------------------------------------------------------------
    # one-sided / RPC
    # ------------------------------------------------------------------
    def rpc(
        self,
        target: int,
        handler: Callable[..., Any],
        *args: Any,
        nbytes_out: Optional[float] = None,
        nbytes_in: float = 64.0,
    ) -> Any:
        """Execute ``handler(*args)`` against rank ``target``'s state.

        Models an ARMCI-style active message: the caller pays the
        round-trip; the handler runs atomically at the target (the
        scheduler's global ordering makes this trivially consistent).
        Calls to one's own rank cost only the handler time.
        """
        self.sched.wait_turn(self.rank)
        result = handler(*args)
        if target == self.rank:
            self.charge(self.machine.rpc_handler_cost_s)
        else:
            out = payload_nbytes(args) if nbytes_out is None else nbytes_out
            self.charge(self.machine.rpc_seconds(out, nbytes_in))
        return result

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def region(self, name: str) -> Iterator[None]:
        """Context manager recording a named virtual-time region."""
        return self.tracer.region(
            self.rank, name, self.sched.clocks[self.rank]
        )

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self.comm.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankContext(rank={self.rank}, nprocs={self.nprocs})"
