"""Deterministic virtual-time scheduler for SPMD rank threads.

The simulator runs each rank of an SPMD program on its own OS thread,
but only **one rank executes at a time**: whenever a rank reaches a
*synchronization point* (any runtime API call -- message, collective,
one-sided operation, RPC), it yields, and the scheduler hands the turn
to the runnable rank with the smallest virtual clock (ties broken by
rank id).  Because every globally-visible operation therefore executes
in virtual-time order, the simulation is a conservative discrete-event
simulation and is bit-reproducible: dynamic load-balancing decisions,
hashmap insertion orders, and message matchings come out identical on
every run.

Pure local compute between synchronization points runs at full speed
and is accounted for by explicit cost charges against the rank's
virtual clock (see :class:`repro.runtime.machine.MachineSpec`).

Wall-clock fast paths
---------------------
The scheduling *policy* is fixed (minimum ``(clock, rank)`` wins), but
the *mechanism* has two interchangeable implementations:

* the default fast path keeps runnable candidates in a heap keyed on
  ``(virtual time, kind, rank)`` and wakes only the next turn-holder
  through a per-rank :class:`threading.Event`.  A rank that yields but
  is still the minimum-clock runnable rank *retains the turn* without
  any context switch or wakeup at all -- the dominant case in
  compute-heavy stages;
* setting ``REPRO_SCHED_SLOWPATH=1`` selects the original reference
  mechanism -- a shared :class:`threading.Condition`, a broadcast
  ``notify_all`` per turn handoff, and a linear min-clock scan.

Both mechanisms implement the identical policy, so virtual-time
results, traces, and every downstream number are bit-identical either
way (``tests/runtime/test_sched_fastpath.py`` enforces this).  The
fast path exists purely to cut real wall-clock time: ``notify_all``
wakes every waiting rank thread only for all but one to go back to
sleep, which dominated runs at P >= 8.

Fault tolerance
---------------
A rank may *fail-stop crash* (injected via
:class:`~repro.runtime.faults.FaultInjector`): it transitions to a
terminal ``FAILED`` state without aborting the world.  Blocked ranks
may carry a virtual-time *deadline*; a rank whose deadline is the
minimum pending virtual time resumes with ``timed_out=True`` instead of
waiting forever on a dead peer.  Deadline firing is deterministic: a
deadline is only taken when no READY rank could still run at an earlier
(or equal) virtual time, so a would-be waker always gets to run first.
"""

from __future__ import annotations

import heapq
import os
import threading
from typing import Callable, Optional

from .clock import VirtualClock
from .errors import (
    ClusterAborted,
    CommTimeoutError,
    DeadlockError,
    RankCrashedError,
    RankFailedError,
)

# Error types the driver re-raises verbatim rather than wrapping in the
# generic "rank N failed" RuntimeError: they are self-describing and
# callers (tests, the engine's restart loop) match on them directly.
_PASSTHROUGH_ERRORS = (DeadlockError, RankFailedError, CommTimeoutError)

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"

#: candidate kinds in the dispatch key -- READY beats an equal-time
#: deadline, matching the determinism rule in the module docstring
_KIND_READY = 0
_KIND_DEADLINE = 1

#: environment variable selecting the reference (slow-path) mechanism
SLOWPATH_ENV = "REPRO_SCHED_SLOWPATH"


def _slowpath_enabled() -> bool:
    return os.environ.get(SLOWPATH_ENV, "") not in ("", "0")


class Scheduler:
    """Coordinates ``nprocs`` cooperative rank threads in virtual time."""

    def __init__(self, nprocs: int, injector=None, metrics=None):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self._lock = threading.Lock()
        #: reference mechanism: rank threads wait here, woken broadcast
        self._cv = threading.Condition(self._lock)
        #: the driver's wait_all parks here in both mechanisms
        self._driver_cv = threading.Condition(self._lock)
        #: fast path: one wakeup primitive per rank, set only for the
        #: rank actually granted the turn
        self._turn_evt = [threading.Event() for _ in range(nprocs)]
        #: fast path: dispatch candidates as (t, kind, rank, gen); a
        #: rank's entries are lazily invalidated by bumping its _gen.
        #: Seeded with every rank at t=0 (all start READY) so the very
        #: first arrivals see the full candidate set and the turn order
        #: is independent of OS thread startup interleaving.
        self._heap: list[tuple[float, int, int, int]] = [
            (0.0, _KIND_READY, r, 0) for r in range(nprocs)
        ]
        self._gen = [0] * nprocs
        self.slowpath = _slowpath_enabled()
        self._state = [_READY] * nprocs
        self._block_reason: list[str] = [""] * nprocs
        self._current: Optional[int] = None
        self._done_count = 0
        self._error: Optional[BaseException] = None
        self._error_rank: Optional[int] = None
        #: total virtual seconds each rank spent blocked (waiting on
        #: messages, collectives, or wakes) -- the waiting/imbalance
        #: side of the utilization picture
        self.blocked_time = [0.0] * nprocs
        self._block_entry = [0.0] * nprocs
        #: optional fault injector consulted at every synchronization
        #: point and compute charge (None = fault-free, zero overhead)
        self.injector = injector
        #: virtual time each crashed rank died at (empty if none did)
        self.failed_at: dict[int, float] = {}
        self._deadline: list[Optional[float]] = [None] * nprocs
        self._timed_out = [False] * nprocs
        #: optional MetricsRegistry recording blocked-time counters and
        #: histograms (None for standalone schedulers, e.g. unit tests)
        self.metrics = metrics

    # ------------------------------------------------------------------
    # rank-side API (called from rank threads)
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        """Virtual time of ``rank`` (only its own thread may call this)."""
        return self.clocks[rank].now

    def advance(self, rank: int, dt: float) -> float:
        """Charge ``dt`` virtual seconds to ``rank``'s clock.

        Straggler faults scale the charge (a slow node takes longer to
        do the same work).
        """
        if self.injector is not None:
            dt = self.injector.scale_compute(
                rank, self.clocks[rank].now, dt
            )
        return self.clocks[rank].advance(dt)

    def wait_turn(self, rank: int) -> None:
        """Yield until ``rank`` is the minimum-clock runnable rank.

        Every globally-visible runtime operation calls this first; on
        return the rank *holds the turn* and may mutate shared
        simulation state without further locking (no other rank runs).

        Fast path: when the yielding rank is still the minimum-clock
        runnable rank it retains the turn immediately -- no wakeup is
        issued and no other thread runs.

        If a crash fault is due for this rank, it fires here (raising
        :class:`~repro.runtime.errors.RankCrashedError`) -- i.e. ranks
        die at synchronization points, with the turn held, so the
        simulation state stays consistent.
        """
        if self.slowpath:
            self._wait_turn_slow(rank)
        else:
            granted = False
            with self._lock:
                self._check_error_locked()
                self._state[rank] = _READY
                if self._current == rank:
                    self._current = None
                if self._current is None:
                    # turn-retention fast path: if this rank's key is
                    # <= the best other candidate, it wins back the
                    # turn without touching the heap or any event
                    top = self._prune_top_locked()
                    key = (self.clocks[rank].now, _KIND_READY, rank)
                    if top is None or key <= top[:3]:
                        self._current = rank
                        self._state[rank] = _RUNNING
                        granted = True
                    else:
                        self._push_locked(rank, key[0], _KIND_READY)
                        self._dispatch_locked(caller=rank)
                        granted = self._current == rank
                else:
                    self._push_locked(
                        rank, self.clocks[rank].now, _KIND_READY
                    )
            if not granted:
                self._await_turn(rank)
        if self.injector is not None:
            # Turn held; may raise RankCrashedError to unwind this rank.
            self.injector.on_turn(rank, self.clocks[rank].now)

    def _wait_turn_slow(self, rank: int) -> None:
        """Reference mechanism for :meth:`wait_turn` (broadcast wakeups)."""
        with self._cv:
            self._check_error_locked()
            self._state[rank] = _READY
            if self._current == rank:
                self._current = None
            self._schedule_slow_locked()
            while self._current != rank:
                self._cv.wait()
                self._check_error_locked()

    def block(
        self, rank: int, reason: str = "", timeout: Optional[float] = None
    ) -> bool:
        """Block ``rank`` until woken, or until ``timeout`` virtual seconds.

        Must be called while holding the turn.  On return the rank
        holds the turn again; the return value is ``True`` when the
        deadline fired before any :meth:`wake` arrived (the clock is
        then advanced to the deadline).
        """
        with self._lock:
            self._check_error_locked()
            self._state[rank] = _BLOCKED
            self._block_reason[rank] = reason
            self._block_entry[rank] = self.clocks[rank].now
            if timeout is not None:
                self._deadline[rank] = self.clocks[rank].now + timeout
            self._timed_out[rank] = False
            if self._current == rank:
                self._current = None
            if self.slowpath:
                self._schedule_slow_locked()
                while self._current != rank:
                    self._cv.wait()
                    self._check_error_locked()
                return self._finish_block_locked(rank)
            if timeout is not None:
                self._push_locked(
                    rank,
                    max(self.clocks[rank].now, self._deadline[rank]),
                    _KIND_DEADLINE,
                )
            else:
                # invalidate any stale candidate entry for this rank
                self._gen[rank] += 1
            self._dispatch_locked(caller=rank)
            if self._current == rank:
                return self._finish_block_locked(rank)
        self._await_turn(rank)
        with self._lock:
            return self._finish_block_locked(rank)

    def _finish_block_locked(self, rank: int) -> bool:
        """Account a completed :meth:`block`; returns the timeout flag."""
        self._deadline[rank] = None
        timed_out = self._timed_out[rank]
        self._timed_out[rank] = False
        # the waker (or the deadline) advanced our clock
        dt = self.clocks[rank].now - self._block_entry[rank]
        self.blocked_time[rank] += dt
        if self.metrics is not None:
            # single accounting point shared by every dispatch
            # mechanism, so both scheduler paths record identically
            self.metrics.counter("sched.blocked_seconds").inc(rank, dt)
            self.metrics.histogram("sched.block_seconds").observe(rank, dt)
        return timed_out

    def is_blocked(self, rank: int) -> bool:
        """True while ``rank`` sits in :meth:`block` awaiting a wake."""
        with self._lock:
            return self._state[rank] == _BLOCKED

    def wake(self, rank: int, at_time: float) -> None:
        """Make a blocked rank runnable again at virtual time ``at_time``.

        Must be called by a rank holding the turn; the woken rank will
        actually run once it becomes the minimum-clock runnable rank.
        ``at_time`` may not precede the woken rank's blocking time.

        Waking a FAILED rank is a silent no-op: collective completers
        and eager senders may legitimately address a peer that crashed
        after joining the rendezvous.
        """
        with self._lock:
            if self._state[rank] == _FAILED:
                return
            if self._state[rank] != _BLOCKED:
                raise RuntimeError(
                    f"wake({rank}) but rank is {self._state[rank]!r}"
                )
            self.clocks[rank].advance_to(at_time)
            self._state[rank] = _READY
            self._block_reason[rank] = ""
            self._deadline[rank] = None
            if not self.slowpath:
                self._push_locked(
                    rank, self.clocks[rank].now, _KIND_READY
                )
            # No reschedule here: the waker still holds the turn and
            # will yield at its next synchronization point.

    def finish(self, rank: int) -> None:
        """Mark ``rank``'s program as complete and release the turn."""
        with self._lock:
            self._state[rank] = _DONE
            self._done_count += 1
            if self._current == rank:
                self._current = None
            if self.slowpath:
                self._schedule_slow_locked()
                self._cv.notify_all()
            else:
                self._gen[rank] += 1
                self._dispatch_locked()
            self._notify_driver_locked()

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record a rank failure and abort every other rank."""
        with self._lock:
            if self._error is None:
                self._error = exc
                self._error_rank = rank
            self._state[rank] = _DONE
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._abort_wake_all_locked()
            self._notify_driver_locked()

    def crash(self, rank: int) -> None:
        """Transition ``rank`` to the terminal FAILED state.

        Unlike :meth:`fail` this does *not* abort the world: surviving
        ranks keep running and learn of the death via timeouts or the
        failure-detector API.  Called by the rank's own thread while it
        unwinds from an injected
        :class:`~repro.runtime.errors.RankCrashedError`.
        """
        with self._lock:
            self._state[rank] = _FAILED
            self.failed_at[rank] = self.clocks[rank].now
            self._block_reason[rank] = ""
            self._deadline[rank] = None
            self._done_count += 1
            if self._current == rank:
                self._current = None
            if self.slowpath:
                self._schedule_slow_locked()
                self._cv.notify_all()
            else:
                self._gen[rank] += 1
                self._dispatch_locked()
            self._notify_driver_locked()

    def abort_ack(self, rank: int) -> None:
        """Acknowledge a cluster abort from a victim rank's thread.

        When one rank fails hard, the others unwind with
        :class:`~repro.runtime.errors.ClusterAborted`; each calls this
        to account itself as done so the driver's :meth:`wait_all` can
        return.  No rescheduling happens -- the cluster is going down.
        """
        with self._lock:
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._state[rank] = _DONE
            if self.slowpath:
                self._cv.notify_all()
            self._notify_driver_locked()

    # ------------------------------------------------------------------
    # failure detection (rank-side, call with the turn held)
    # ------------------------------------------------------------------
    def failures_observed_by(self, rank: int) -> list[int]:
        """Crashed ranks whose death ``rank`` can already observe.

        Models a heartbeat-style detector: a crash at ``t_f`` becomes
        visible ``detection_latency_s`` later, so a rank whose clock
        has not yet reached ``t_f + latency`` does not see it.
        """
        lat = (
            self.injector.detection_latency_s
            if self.injector is not None
            else 0.0
        )
        now = self.clocks[rank].now
        return sorted(
            r for r, t in self.failed_at.items() if t + lat <= now
        )

    # ------------------------------------------------------------------
    # driver-side API
    # ------------------------------------------------------------------
    def wait_all(self) -> None:
        """Block the driving thread until all ranks finish or one fails."""
        with self._lock:
            while self._done_count < self.nprocs and self._error is None:
                self._driver_cv.wait()
            if self._error is not None:
                exc, rank = self._error, self._error_rank
                if isinstance(exc, _PASSTHROUGH_ERRORS):
                    raise exc
                raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc

    @property
    def failed(self) -> bool:
        with self._lock:
            return self._error is not None

    # ------------------------------------------------------------------
    # fast-path internals (call with self._lock held)
    # ------------------------------------------------------------------
    def _push_locked(self, rank: int, t: float, kind: int) -> None:
        """Register ``rank`` as a dispatch candidate at time ``t``.

        Bumping the generation first lazily invalidates any earlier
        entry the heap may still hold for this rank.
        """
        self._gen[rank] += 1
        heapq.heappush(self._heap, (t, kind, rank, self._gen[rank]))

    def _entry_valid_locked(self, entry: tuple) -> bool:
        t, kind, rank, gen = entry
        if gen != self._gen[rank]:
            return False
        if kind == _KIND_READY:
            return self._state[rank] == _READY
        return (
            self._state[rank] == _BLOCKED
            and self._deadline[rank] is not None
        )

    def _prune_top_locked(self) -> Optional[tuple]:
        """Drop stale heap entries; return the best live candidate."""
        heap = self._heap
        while heap:
            if self._entry_valid_locked(heap[0]):
                return heap[0]
            heapq.heappop(heap)
        return None

    def _await_turn(self, rank: int) -> None:
        """Park until this rank's wakeup primitive grants it the turn."""
        evt = self._turn_evt[rank]
        while True:
            evt.wait()
            with self._lock:
                evt.clear()
                self._check_error_locked()
                if self._current == rank:
                    return

    def _abort_wake_all_locked(self) -> None:
        """Wake every parked rank thread so it can observe the abort."""
        if self.slowpath:
            self._cv.notify_all()
        else:
            for evt in self._turn_evt:
                evt.set()

    def _notify_driver_locked(self) -> None:
        if self._done_count >= self.nprocs or self._error is not None:
            self._driver_cv.notify_all()

    def _dispatch_locked(self, caller: Optional[int] = None) -> None:
        """Grant the turn to the best candidate (fast-path mechanism).

        Pops the winning heap entry and wakes exactly that rank's event
        -- unless the winner is ``caller`` itself, which observes
        ``_current`` inline without any wakeup.  Fires deadline
        bookkeeping for timed-out blocks and declares a deadlock when
        nobody can run.
        """
        if self._current is not None:
            return
        top = self._prune_top_locked()
        if top is not None:
            t, kind, rank, _gen = heapq.heappop(self._heap)
            self._gen[rank] += 1
            if kind == _KIND_DEADLINE:
                self.clocks[rank].advance_to(t)
                self._timed_out[rank] = True
                self._block_reason[rank] = ""
            self._current = rank
            self._state[rank] = _RUNNING
            if rank != caller:
                self._turn_evt[rank].set()
            return
        if self._done_count >= self.nprocs:
            return
        self._declare_deadlock_locked()

    def _declare_deadlock_locked(self) -> None:
        blocked = {
            r: self._block_reason[r] or "unknown"
            for r in range(self.nprocs)
            if self._state[r] == _BLOCKED
        }
        if blocked and self._error is None:
            clocks = {r: self.clocks[r].now for r in blocked}
            already = {r: self.blocked_time[r] for r in blocked}
            self._error = DeadlockError(
                blocked, clocks=clocks, blocked_time=already
            )
            self._error_rank = -1
            self._abort_wake_all_locked()
            self._notify_driver_locked()

    # ------------------------------------------------------------------
    # reference (slow-path) internals (call with self._lock held)
    # ------------------------------------------------------------------
    def _check_error_locked(self) -> None:
        if self._error is not None:
            raise ClusterAborted(
                f"aborted: rank {self._error_rank} failed with "
                f"{self._error!r}"
            )

    def _schedule_slow_locked(self) -> None:
        """Reference dispatch: linear scan + broadcast wakeup."""
        if self._current is not None:
            return
        # Candidates: READY ranks at their clock, and BLOCKED ranks with
        # a deadline at max(clock, deadline).  Taking the minimum over
        # both (READY wins ties) keeps timeouts deterministic: a
        # deadline only fires when no rank that could still wake the
        # blocked one can run at an earlier-or-equal virtual time.
        best: Optional[int] = None
        best_t = 0.0
        best_kind = 0
        for r in range(self.nprocs):
            if self._state[r] == _READY:
                t, kind = self.clocks[r].now, _KIND_READY
            elif self._state[r] == _BLOCKED and self._deadline[r] is not None:
                t = max(self.clocks[r].now, self._deadline[r])
                kind = _KIND_DEADLINE
            else:
                continue
            if best is None or (t, kind) < (best_t, best_kind):
                best, best_t, best_kind = r, t, kind
        if best is not None:
            if best_kind == _KIND_DEADLINE:
                self.clocks[best].advance_to(best_t)
                self._timed_out[best] = True
                self._block_reason[best] = ""
            self._current = best
            self._state[best] = _RUNNING
            self._cv.notify_all()
            return
        if self._done_count >= self.nprocs:
            self._cv.notify_all()
            return
        self._declare_deadlock_locked()


def spawn_ranks(
    sched: Scheduler,
    target: Callable[[int], object],
) -> tuple[list[threading.Thread], list[object]]:
    """Start one daemon thread per rank running ``target(rank)``.

    Returns the thread list and a results list that the threads fill
    in; the caller should then invoke :meth:`Scheduler.wait_all`.
    """
    results: list[object] = [None] * sched.nprocs

    def _main(rank: int) -> None:
        try:
            sched.wait_turn(rank)
            results[rank] = target(rank)
        except RankCrashedError:
            sched.crash(rank)
            return
        except ClusterAborted:
            sched.abort_ack(rank)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to driver
            sched.fail(rank, exc)
            return
        sched.finish(rank)

    threads = [
        threading.Thread(
            target=_main, args=(r,), name=f"repro-rank-{r}", daemon=True
        )
        for r in range(sched.nprocs)
    ]
    for t in threads:
        t.start()
    return threads, results
