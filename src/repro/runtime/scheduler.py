"""Deterministic virtual-time scheduler for SPMD rank threads.

The simulator runs each rank of an SPMD program on its own OS thread,
but only **one rank executes at a time**: whenever a rank reaches a
*synchronization point* (any runtime API call -- message, collective,
one-sided operation, RPC), it yields, and the scheduler hands the turn
to the runnable rank with the smallest virtual clock (ties broken by
rank id).  Because every globally-visible operation therefore executes
in virtual-time order, the simulation is a conservative discrete-event
simulation and is bit-reproducible: dynamic load-balancing decisions,
hashmap insertion orders, and message matchings come out identical on
every run.

Pure local compute between synchronization points runs at full speed
and is accounted for by explicit cost charges against the rank's
virtual clock (see :class:`repro.runtime.machine.MachineSpec`).
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from .clock import VirtualClock
from .errors import ClusterAborted, DeadlockError

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"


class Scheduler:
    """Coordinates ``nprocs`` cooperative rank threads in virtual time."""

    def __init__(self, nprocs: int):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self._cv = threading.Condition()
        self._state = [_READY] * nprocs
        self._block_reason: list[str] = [""] * nprocs
        self._current: Optional[int] = None
        self._done_count = 0
        self._error: Optional[BaseException] = None
        self._error_rank: Optional[int] = None
        #: total virtual seconds each rank spent blocked (waiting on
        #: messages, collectives, or wakes) -- the waiting/imbalance
        #: side of the utilization picture
        self.blocked_time = [0.0] * nprocs
        self._block_entry = [0.0] * nprocs

    # ------------------------------------------------------------------
    # rank-side API (called from rank threads)
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        """Virtual time of ``rank`` (only its own thread may call this)."""
        return self.clocks[rank].now

    def advance(self, rank: int, dt: float) -> float:
        """Charge ``dt`` virtual seconds to ``rank``'s clock."""
        return self.clocks[rank].advance(dt)

    def wait_turn(self, rank: int) -> None:
        """Yield until ``rank`` is the minimum-clock runnable rank.

        Every globally-visible runtime operation calls this first; on
        return the rank *holds the turn* and may mutate shared
        simulation state without further locking (no other rank runs).
        """
        with self._cv:
            self._check_error_locked()
            self._state[rank] = _READY
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            while self._current != rank:
                self._cv.wait()
                self._check_error_locked()

    def block(self, rank: int, reason: str = "") -> None:
        """Block ``rank`` until another rank calls :meth:`wake` for it.

        Must be called while holding the turn.  On return the rank has
        been woken *and* holds the turn again.
        """
        with self._cv:
            self._check_error_locked()
            self._state[rank] = _BLOCKED
            self._block_reason[rank] = reason
            self._block_entry[rank] = self.clocks[rank].now
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            while self._current != rank:
                self._cv.wait()
                self._check_error_locked()
            # the waker advanced our clock to the wake time
            self.blocked_time[rank] += (
                self.clocks[rank].now - self._block_entry[rank]
            )

    def is_blocked(self, rank: int) -> bool:
        """True while ``rank`` sits in :meth:`block` awaiting a wake."""
        with self._cv:
            return self._state[rank] == _BLOCKED

    def wake(self, rank: int, at_time: float) -> None:
        """Make a blocked rank runnable again at virtual time ``at_time``.

        Must be called by a rank holding the turn; the woken rank will
        actually run once it becomes the minimum-clock runnable rank.
        ``at_time`` may not precede the woken rank's blocking time.
        """
        with self._cv:
            if self._state[rank] != _BLOCKED:
                raise RuntimeError(
                    f"wake({rank}) but rank is {self._state[rank]!r}"
                )
            self.clocks[rank].advance_to(at_time)
            self._state[rank] = _READY
            self._block_reason[rank] = ""
            # No reschedule here: the waker still holds the turn and
            # will yield at its next synchronization point.

    def finish(self, rank: int) -> None:
        """Mark ``rank``'s program as complete and release the turn."""
        with self._cv:
            self._state[rank] = _DONE
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            self._cv.notify_all()

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record a rank failure and abort every other rank."""
        with self._cv:
            if self._error is None:
                self._error = exc
                self._error_rank = rank
            self._state[rank] = _DONE
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # driver-side API
    # ------------------------------------------------------------------
    def wait_all(self) -> None:
        """Block the driving thread until all ranks finish or one fails."""
        with self._cv:
            while self._done_count < self.nprocs and self._error is None:
                self._cv.wait()
            if self._error is not None:
                exc, rank = self._error, self._error_rank
                if isinstance(exc, DeadlockError):
                    raise exc
                raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc

    @property
    def failed(self) -> bool:
        with self._cv:
            return self._error is not None

    # ------------------------------------------------------------------
    # internals (call with self._cv held)
    # ------------------------------------------------------------------
    def _check_error_locked(self) -> None:
        if self._error is not None:
            raise ClusterAborted(
                f"aborted: rank {self._error_rank} failed with "
                f"{self._error!r}"
            )

    def _schedule_locked(self) -> None:
        if self._current is not None:
            return
        best: Optional[int] = None
        best_t = 0.0
        for r in range(self.nprocs):
            if self._state[r] != _READY:
                continue
            t = self.clocks[r].now
            if best is None or t < best_t:
                best, best_t = r, t
        if best is not None:
            self._current = best
            self._state[best] = _RUNNING
            self._cv.notify_all()
            return
        if self._done_count >= self.nprocs:
            self._cv.notify_all()
            return
        blocked = {
            r: self._block_reason[r] or "unknown"
            for r in range(self.nprocs)
            if self._state[r] == _BLOCKED
        }
        if blocked and self._error is None:
            self._error = DeadlockError(blocked)
            self._error_rank = -1
            self._cv.notify_all()


def spawn_ranks(
    sched: Scheduler,
    target: Callable[[int], object],
) -> tuple[list[threading.Thread], list[object]]:
    """Start one daemon thread per rank running ``target(rank)``.

    Returns the thread list and a results list that the threads fill
    in; the caller should then invoke :meth:`Scheduler.wait_all`.
    """
    results: list[object] = [None] * sched.nprocs

    def _main(rank: int) -> None:
        try:
            sched.wait_turn(rank)
            results[rank] = target(rank)
        except ClusterAborted:
            with sched._cv:
                sched._done_count += 1
                if sched._current == rank:
                    sched._current = None
                sched._state[rank] = _DONE
                sched._cv.notify_all()
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to driver
            sched.fail(rank, exc)
            return
        sched.finish(rank)

    threads = [
        threading.Thread(
            target=_main, args=(r,), name=f"repro-rank-{r}", daemon=True
        )
        for r in range(sched.nprocs)
    ]
    for t in threads:
        t.start()
    return threads, results
