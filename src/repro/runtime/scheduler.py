"""Deterministic virtual-time scheduler for SPMD rank threads.

The simulator runs each rank of an SPMD program on its own OS thread,
but only **one rank executes at a time**: whenever a rank reaches a
*synchronization point* (any runtime API call -- message, collective,
one-sided operation, RPC), it yields, and the scheduler hands the turn
to the runnable rank with the smallest virtual clock (ties broken by
rank id).  Because every globally-visible operation therefore executes
in virtual-time order, the simulation is a conservative discrete-event
simulation and is bit-reproducible: dynamic load-balancing decisions,
hashmap insertion orders, and message matchings come out identical on
every run.

Pure local compute between synchronization points runs at full speed
and is accounted for by explicit cost charges against the rank's
virtual clock (see :class:`repro.runtime.machine.MachineSpec`).

Fault tolerance
---------------
A rank may *fail-stop crash* (injected via
:class:`~repro.runtime.faults.FaultInjector`): it transitions to a
terminal ``FAILED`` state without aborting the world.  Blocked ranks
may carry a virtual-time *deadline*; a rank whose deadline is the
minimum pending virtual time resumes with ``timed_out=True`` instead of
waiting forever on a dead peer.  Deadline firing is deterministic: a
deadline is only taken when no READY rank could still run at an earlier
(or equal) virtual time, so a would-be waker always gets to run first.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from .clock import VirtualClock
from .errors import (
    ClusterAborted,
    CommTimeoutError,
    DeadlockError,
    RankCrashedError,
    RankFailedError,
)

# Error types the driver re-raises verbatim rather than wrapping in the
# generic "rank N failed" RuntimeError: they are self-describing and
# callers (tests, the engine's restart loop) match on them directly.
_PASSTHROUGH_ERRORS = (DeadlockError, RankFailedError, CommTimeoutError)

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_FAILED = "failed"


class Scheduler:
    """Coordinates ``nprocs`` cooperative rank threads in virtual time."""

    def __init__(self, nprocs: int, injector=None):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.clocks = [VirtualClock() for _ in range(nprocs)]
        self._cv = threading.Condition()
        self._state = [_READY] * nprocs
        self._block_reason: list[str] = [""] * nprocs
        self._current: Optional[int] = None
        self._done_count = 0
        self._error: Optional[BaseException] = None
        self._error_rank: Optional[int] = None
        #: total virtual seconds each rank spent blocked (waiting on
        #: messages, collectives, or wakes) -- the waiting/imbalance
        #: side of the utilization picture
        self.blocked_time = [0.0] * nprocs
        self._block_entry = [0.0] * nprocs
        #: optional fault injector consulted at every synchronization
        #: point and compute charge (None = fault-free, zero overhead)
        self.injector = injector
        #: virtual time each crashed rank died at (empty if none did)
        self.failed_at: dict[int, float] = {}
        self._deadline: list[Optional[float]] = [None] * nprocs
        self._timed_out = [False] * nprocs

    # ------------------------------------------------------------------
    # rank-side API (called from rank threads)
    # ------------------------------------------------------------------
    def now(self, rank: int) -> float:
        """Virtual time of ``rank`` (only its own thread may call this)."""
        return self.clocks[rank].now

    def advance(self, rank: int, dt: float) -> float:
        """Charge ``dt`` virtual seconds to ``rank``'s clock.

        Straggler faults scale the charge (a slow node takes longer to
        do the same work).
        """
        if self.injector is not None:
            dt = self.injector.scale_compute(
                rank, self.clocks[rank].now, dt
            )
        return self.clocks[rank].advance(dt)

    def wait_turn(self, rank: int) -> None:
        """Yield until ``rank`` is the minimum-clock runnable rank.

        Every globally-visible runtime operation calls this first; on
        return the rank *holds the turn* and may mutate shared
        simulation state without further locking (no other rank runs).

        If a crash fault is due for this rank, it fires here (raising
        :class:`~repro.runtime.errors.RankCrashedError`) -- i.e. ranks
        die at synchronization points, with the turn held, so the
        simulation state stays consistent.
        """
        with self._cv:
            self._check_error_locked()
            self._state[rank] = _READY
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            while self._current != rank:
                self._cv.wait()
                self._check_error_locked()
        if self.injector is not None:
            # Turn held; may raise RankCrashedError to unwind this rank.
            self.injector.on_turn(rank, self.clocks[rank].now)

    def block(
        self, rank: int, reason: str = "", timeout: Optional[float] = None
    ) -> bool:
        """Block ``rank`` until woken, or until ``timeout`` virtual seconds.

        Must be called while holding the turn.  On return the rank
        holds the turn again; the return value is ``True`` when the
        deadline fired before any :meth:`wake` arrived (the clock is
        then advanced to the deadline).
        """
        with self._cv:
            self._check_error_locked()
            self._state[rank] = _BLOCKED
            self._block_reason[rank] = reason
            self._block_entry[rank] = self.clocks[rank].now
            if timeout is not None:
                self._deadline[rank] = self.clocks[rank].now + timeout
            self._timed_out[rank] = False
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            while self._current != rank:
                self._cv.wait()
                self._check_error_locked()
            self._deadline[rank] = None
            timed_out = self._timed_out[rank]
            self._timed_out[rank] = False
            # the waker (or the deadline) advanced our clock
            self.blocked_time[rank] += (
                self.clocks[rank].now - self._block_entry[rank]
            )
            return timed_out

    def is_blocked(self, rank: int) -> bool:
        """True while ``rank`` sits in :meth:`block` awaiting a wake."""
        with self._cv:
            return self._state[rank] == _BLOCKED

    def wake(self, rank: int, at_time: float) -> None:
        """Make a blocked rank runnable again at virtual time ``at_time``.

        Must be called by a rank holding the turn; the woken rank will
        actually run once it becomes the minimum-clock runnable rank.
        ``at_time`` may not precede the woken rank's blocking time.

        Waking a FAILED rank is a silent no-op: collective completers
        and eager senders may legitimately address a peer that crashed
        after joining the rendezvous.
        """
        with self._cv:
            if self._state[rank] == _FAILED:
                return
            if self._state[rank] != _BLOCKED:
                raise RuntimeError(
                    f"wake({rank}) but rank is {self._state[rank]!r}"
                )
            self.clocks[rank].advance_to(at_time)
            self._state[rank] = _READY
            self._block_reason[rank] = ""
            self._deadline[rank] = None
            # No reschedule here: the waker still holds the turn and
            # will yield at its next synchronization point.

    def finish(self, rank: int) -> None:
        """Mark ``rank``'s program as complete and release the turn."""
        with self._cv:
            self._state[rank] = _DONE
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            self._cv.notify_all()

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record a rank failure and abort every other rank."""
        with self._cv:
            if self._error is None:
                self._error = exc
                self._error_rank = rank
            self._state[rank] = _DONE
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._cv.notify_all()

    def crash(self, rank: int) -> None:
        """Transition ``rank`` to the terminal FAILED state.

        Unlike :meth:`fail` this does *not* abort the world: surviving
        ranks keep running and learn of the death via timeouts or the
        failure-detector API.  Called by the rank's own thread while it
        unwinds from an injected
        :class:`~repro.runtime.errors.RankCrashedError`.
        """
        with self._cv:
            self._state[rank] = _FAILED
            self.failed_at[rank] = self.clocks[rank].now
            self._block_reason[rank] = ""
            self._deadline[rank] = None
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._schedule_locked()
            self._cv.notify_all()

    def abort_ack(self, rank: int) -> None:
        """Acknowledge a cluster abort from a victim rank's thread.

        When one rank fails hard, the others unwind with
        :class:`~repro.runtime.errors.ClusterAborted`; each calls this
        to account itself as done so the driver's :meth:`wait_all` can
        return.  No rescheduling happens -- the cluster is going down.
        """
        with self._cv:
            self._done_count += 1
            if self._current == rank:
                self._current = None
            self._state[rank] = _DONE
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # failure detection (rank-side, call with the turn held)
    # ------------------------------------------------------------------
    def failures_observed_by(self, rank: int) -> list[int]:
        """Crashed ranks whose death ``rank`` can already observe.

        Models a heartbeat-style detector: a crash at ``t_f`` becomes
        visible ``detection_latency_s`` later, so a rank whose clock
        has not yet reached ``t_f + latency`` does not see it.
        """
        lat = (
            self.injector.detection_latency_s
            if self.injector is not None
            else 0.0
        )
        now = self.clocks[rank].now
        return sorted(
            r for r, t in self.failed_at.items() if t + lat <= now
        )

    # ------------------------------------------------------------------
    # driver-side API
    # ------------------------------------------------------------------
    def wait_all(self) -> None:
        """Block the driving thread until all ranks finish or one fails."""
        with self._cv:
            while self._done_count < self.nprocs and self._error is None:
                self._cv.wait()
            if self._error is not None:
                exc, rank = self._error, self._error_rank
                if isinstance(exc, _PASSTHROUGH_ERRORS):
                    raise exc
                raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc

    @property
    def failed(self) -> bool:
        with self._cv:
            return self._error is not None

    # ------------------------------------------------------------------
    # internals (call with self._cv held)
    # ------------------------------------------------------------------
    def _check_error_locked(self) -> None:
        if self._error is not None:
            raise ClusterAborted(
                f"aborted: rank {self._error_rank} failed with "
                f"{self._error!r}"
            )

    def _schedule_locked(self) -> None:
        if self._current is not None:
            return
        # Candidates: READY ranks at their clock, and BLOCKED ranks with
        # a deadline at max(clock, deadline).  Taking the minimum over
        # both (READY wins ties) keeps timeouts deterministic: a
        # deadline only fires when no rank that could still wake the
        # blocked one can run at an earlier-or-equal virtual time.
        best: Optional[int] = None
        best_t = 0.0
        best_kind = 0
        for r in range(self.nprocs):
            if self._state[r] == _READY:
                t, kind = self.clocks[r].now, 0
            elif self._state[r] == _BLOCKED and self._deadline[r] is not None:
                t = max(self.clocks[r].now, self._deadline[r])
                kind = 1
            else:
                continue
            if best is None or (t, kind) < (best_t, best_kind):
                best, best_t, best_kind = r, t, kind
        if best is not None:
            if best_kind == 1:
                self.clocks[best].advance_to(best_t)
                self._timed_out[best] = True
                self._block_reason[best] = ""
            self._current = best
            self._state[best] = _RUNNING
            self._cv.notify_all()
            return
        if self._done_count >= self.nprocs:
            self._cv.notify_all()
            return
        blocked = {
            r: self._block_reason[r] or "unknown"
            for r in range(self.nprocs)
            if self._state[r] == _BLOCKED
        }
        if blocked and self._error is None:
            clocks = {r: self.clocks[r].now for r in blocked}
            already = {r: self.blocked_time[r] for r in blocked}
            self._error = DeadlockError(
                blocked, clocks=clocks, blocked_time=already
            )
            self._error_rank = -1
            self._cv.notify_all()


def spawn_ranks(
    sched: Scheduler,
    target: Callable[[int], object],
) -> tuple[list[threading.Thread], list[object]]:
    """Start one daemon thread per rank running ``target(rank)``.

    Returns the thread list and a results list that the threads fill
    in; the caller should then invoke :meth:`Scheduler.wait_all`.
    """
    results: list[object] = [None] * sched.nprocs

    def _main(rank: int) -> None:
        try:
            sched.wait_turn(rank)
            results[rank] = target(rank)
        except RankCrashedError:
            sched.crash(rank)
            return
        except ClusterAborted:
            sched.abort_ack(rank)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to driver
            sched.fail(rank, exc)
            return
        sched.finish(rank)

    threads = [
        threading.Thread(
            target=_main, args=(r,), name=f"repro-rank-{r}", daemon=True
        )
        for r in range(sched.nprocs)
    ]
    for t in threads:
        t.start()
    return threads, results
