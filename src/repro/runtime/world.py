"""Shared simulation state for one cluster run.

A :class:`World` owns every structure that is conceptually *distributed*
across ranks -- mailboxes, collective gates, global arrays, hashmaps,
task queues.  Because the scheduler guarantees that only one rank runs
at a time (the turn-holder), ranks mutate the world without locking.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from typing import Any, Callable, Optional

import numpy as np

from .metrics import MetricsRegistry


class CollectiveGate:
    """Rendezvous point for one collective call instance."""

    __slots__ = ("kind", "arrivals", "results", "reads", "nprocs")

    def __init__(self, kind: str, nprocs: int):
        self.kind = kind
        self.nprocs = nprocs
        #: rank -> (arrival virtual time, payload, cached wire size);
        #: the size is measured once by the arriving rank itself and is
        #: ``None`` when a caller-supplied hint makes it unnecessary
        self.arrivals: dict[int, tuple[float, Any, Optional[float]]] = {}
        #: rank -> result, filled by the last arriver
        self.results: Optional[list[Any]] = None
        self.reads = 0


class World:
    """All cross-rank state of a single simulated run.

    The class doubles as the *backend seam*: the GA structures, the
    engine, and :class:`~repro.runtime.context.RankContext` only touch
    cross-rank state through the hook methods below (``make_comm``,
    ``shared_state``, ``alloc_ndarray``, ``ga_lock``,
    ``published_store``/``publish_store``, ``post_hashmap_sideband``),
    so the multiprocessing backend can substitute process-shared
    implementations (:mod:`repro.runtime.mpbackend`) without any
    call-site changes.
    """

    #: which execution backend this world belongs to ("sim" | "mp")
    backend = "sim"

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        #: (ctx, src, dst, tag) -> deque of in-flight
        #: :class:`~repro.runtime.comm.Message` objects (payload,
        #: arrival time, cached wire size); ``ctx`` separates
        #: communicator contexts, as in MPI
        self.mailboxes: dict[tuple, deque] = {}
        #: (ctx, src, dst, tag) -> blocked receiver global rank
        self.recv_waiters: dict[tuple, int] = {}
        #: (ctx, collective sequence number) -> gate
        self.gates: dict[tuple, CollectiveGate] = {}
        #: name -> backing store for global arrays / hashmaps / queues
        self.registry: dict[str, Any] = {}
        #: compute-once cache for deterministically replicated work
        #: (see :meth:`repro.runtime.context.RankContext.replicated`);
        #: key -> result computed by the first rank to reach the site
        self.replicated: dict[Any, Any] = {}
        #: deterministic per-rank counters/gauges/histograms recorded
        #: by the runtime and GA layers; charges no virtual time
        self.metrics = MetricsRegistry(nprocs)
        #: default virtual-time timeout for blocking receives and
        #: collectives (None = wait forever); set by an active fault
        #: plan so survivors detect dead peers instead of deadlocking
        self.comm_timeout: Optional[float] = None

    def mailbox(self, src: int, dst: int, tag: int, ctx="world") -> deque:
        """World-communicator mailbox accessor (testing convenience)."""
        return self.mailboxes.setdefault((ctx, src, dst, tag), deque())

    # ------------------------------------------------------------------
    # backend hooks (overridden by the multiprocessing backend)
    # ------------------------------------------------------------------
    def make_comm(self, sched, machine, rank: int):
        """Build the world communicator for ``rank``."""
        from .comm import Communicator

        return Communicator(self, sched, machine, rank)

    def shared_state(self, key: str, factory: Callable[[], Any]) -> Any:
        """Backing store for a named distributed structure.

        Under the simulator the value is literally shared between rank
        threads; under the mp backend each process holds a replica and
        cross-process consistency is the structure's own business.
        """
        try:
            return self.registry[key]
        except KeyError:
            value = factory()
            self.registry[key] = value
            return value

    def alloc_ndarray(self, key: str, shape, fill, dtype) -> np.ndarray:
        """Allocate the backing array of a global array.

        The mp backend returns a ``multiprocessing.shared_memory``
        mapped view instead of a private allocation.
        """
        return np.full(shape, fill, dtype=dtype)

    @property
    def ga_lock(self):
        """Mutual exclusion for read-modify-write GA ops.

        The simulator's turn-holding scheduler makes these atomic for
        free; the mp backend substitutes a real cross-process lock.
        """
        return nullcontext()

    def published_store(self, key: str):
        """Rank-indexed mapping of published (read-only) objects."""
        return self.shared_state(key, dict)

    def publish_store(self, key: str, rank: int, value: Any) -> None:
        """Publish ``value`` as rank ``rank``'s entry under ``key``.

        Visibility to other ranks is guaranteed only after the next
        collective (the engine publishes, then barriers).
        """
        self.published_store(key)[rank] = value

    def post_hashmap_sideband(self, name: str, owner: int, batch) -> None:
        """Replicate a remote hashmap insert to the owner's process.

        A no-op under the simulator, where the owner's shard is the
        same Python object the inserting rank just mutated.
        """

    def oob_allgather(self, key: Any, value: Any) -> list:
        """Out-of-band (zero virtual cost) allgather.

        Only the mp backend provides this -- it is real-time plumbing
        for deterministic planning, not a modelled collective.
        """
        raise NotImplementedError(
            "out-of-band allgather requires the mp backend"
        )
