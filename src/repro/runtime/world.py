"""Shared simulation state for one cluster run.

A :class:`World` owns every structure that is conceptually *distributed*
across ranks -- mailboxes, collective gates, global arrays, hashmaps,
task queues.  Because the scheduler guarantees that only one rank runs
at a time (the turn-holder), ranks mutate the world without locking.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .metrics import MetricsRegistry


class CollectiveGate:
    """Rendezvous point for one collective call instance."""

    __slots__ = ("kind", "arrivals", "results", "reads", "nprocs")

    def __init__(self, kind: str, nprocs: int):
        self.kind = kind
        self.nprocs = nprocs
        #: rank -> (arrival virtual time, payload, cached wire size);
        #: the size is measured once by the arriving rank itself and is
        #: ``None`` when a caller-supplied hint makes it unnecessary
        self.arrivals: dict[int, tuple[float, Any, Optional[float]]] = {}
        #: rank -> result, filled by the last arriver
        self.results: Optional[list[Any]] = None
        self.reads = 0


class World:
    """All cross-rank state of a single simulated run."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        #: (ctx, src, dst, tag) -> deque of in-flight
        #: :class:`~repro.runtime.comm.Message` objects (payload,
        #: arrival time, cached wire size); ``ctx`` separates
        #: communicator contexts, as in MPI
        self.mailboxes: dict[tuple, deque] = {}
        #: (ctx, src, dst, tag) -> blocked receiver global rank
        self.recv_waiters: dict[tuple, int] = {}
        #: (ctx, collective sequence number) -> gate
        self.gates: dict[tuple, CollectiveGate] = {}
        #: name -> backing store for global arrays / hashmaps / queues
        self.registry: dict[str, Any] = {}
        #: compute-once cache for deterministically replicated work
        #: (see :meth:`repro.runtime.context.RankContext.replicated`);
        #: key -> result computed by the first rank to reach the site
        self.replicated: dict[Any, Any] = {}
        #: deterministic per-rank counters/gauges/histograms recorded
        #: by the runtime and GA layers; charges no virtual time
        self.metrics = MetricsRegistry(nprocs)
        #: default virtual-time timeout for blocking receives and
        #: collectives (None = wait forever); set by an active fault
        #: plan so survivors detect dead peers instead of deadlocking
        self.comm_timeout: Optional[float] = None

    def mailbox(self, src: int, dst: int, tag: int, ctx="world") -> deque:
        """World-communicator mailbox accessor (testing convenience)."""
        return self.mailboxes.setdefault((ctx, src, dst, tag), deque())
