"""mpi4py-style facade over the simulated communicator.

Code written against ``mpi4py.MPI.COMM_WORLD``'s lowercase
pickle-based API (``send``/``recv``/``bcast``/``scatter``/``gather``/
``allreduce``...) can run on the virtual-time simulator by swapping
the communicator object::

    def main(comm):                     # written for mpi4py
        rank = comm.Get_rank()
        data = comm.bcast({"k": 1} if rank == 0 else None, root=0)
        total = comm.allreduce(rank, op=MPI.SUM)
        ...

    # real cluster:      main(MPI.COMM_WORLD)
    # simulated cluster: Cluster(8).run(lambda ctx: main(MPIComm(ctx)))

Only the generic-object subset is provided (the engine's own code uses
the native :class:`~repro.runtime.comm.Communicator` directly); named
reduction ops ``SUM``/``MAX``/``MIN``/``PROD`` mirror ``mpi4py.MPI``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from .comm import Communicator
from .context import RankContext


def _sum(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.add(a, b)
    return a + b


def _prod(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.multiply(a, b)
    return a * b


def _max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def _min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


#: named reduction operations, as in ``mpi4py.MPI``
SUM: Callable[[Any, Any], Any] = _sum
PROD: Callable[[Any, Any], Any] = _prod
MAX: Callable[[Any, Any], Any] = _max
MIN: Callable[[Any, Any], Any] = _min

#: wildcard source for ``recv`` (any rank)
ANY_SOURCE: int = -1


class MPIComm:
    """mpi4py-flavoured view of a simulated communicator."""

    def __init__(self, ctx_or_comm):
        if isinstance(ctx_or_comm, RankContext):
            self._comm: Communicator = ctx_or_comm.comm
        elif isinstance(ctx_or_comm, Communicator):
            self._comm = ctx_or_comm
        else:
            raise TypeError(
                "MPIComm wraps a RankContext or Communicator, got "
                f"{type(ctx_or_comm).__name__}"
            )

    # ------------------------------------------------------------- meta
    def Get_rank(self) -> int:  # noqa: N802 - mpi4py naming
        return self._comm.rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py naming
        return self._comm.nprocs

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.nprocs

    # ------------------------------------------------------ point to point
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._comm.send(dest, obj, tag=tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        if source == ANY_SOURCE:
            _, obj = self._comm.recv_any(tag=tag)
            return obj
        return self._comm.recv(source, tag=tag)

    def isend(self, obj: Any, dest: int, tag: int = 0):
        return self._comm.isend(dest, obj, tag=tag)

    def irecv(self, source: int, tag: int = 0):
        return self._comm.irecv(source, tag=tag)

    def iprobe(self, source: int, tag: int = 0) -> bool:
        return self._comm.probe(source, tag=tag)

    # ---------------------------------------------------------- collectives
    def Barrier(self) -> None:  # noqa: N802 - mpi4py naming
        self._comm.barrier()

    barrier = Barrier

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        return self._comm.bcast(obj, root=root)

    def scatter(
        self, sendobj: Optional[Sequence[Any]] = None, root: int = 0
    ) -> Any:
        return self._comm.scatter(sendobj, root=root)

    def gather(self, sendobj: Any, root: int = 0) -> Optional[list]:
        return self._comm.gather(sendobj, root=root)

    def allgather(self, sendobj: Any) -> list:
        return self._comm.allgather(sendobj)

    def reduce(
        self,
        sendobj: Any,
        op: Callable[[Any, Any], Any] = SUM,
        root: int = 0,
    ) -> Any:
        return self._comm.reduce(sendobj, op=op, root=root)

    def allreduce(
        self, sendobj: Any, op: Callable[[Any, Any], Any] = SUM
    ) -> Any:
        return self._comm.allreduce(sendobj, op=op)

    def alltoall(self, sendobjs: Sequence[Any]) -> list:
        return self._comm.alltoallv(sendobjs)

    def exscan(
        self, sendobj: Any, op: Callable[[Any, Any], Any] = SUM
    ) -> Any:
        return self._comm.exscan(sendobj, op=op)

    # -------------------------------------------------------------- groups
    def Split(  # noqa: N802 - mpi4py naming
        self, color: Optional[int] = 0, key: Optional[int] = None
    ) -> "Optional[MPIComm]":
        sub = self._comm.split(color, key=key)
        return None if sub is None else MPIComm(sub)
