"""Wire-size estimation for simulated messages.

The communication cost model needs a byte count for arbitrary Python
payloads.  NumPy arrays report their exact buffer size; common builtin
containers are estimated structurally; anything else falls back to its
pickled length.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

#: Assumed per-object framing overhead on the wire.
_HEADER_BYTES = 16


def payload_nbytes(obj: Any) -> int:
    """Estimate the number of bytes ``obj`` would occupy on the wire."""
    return _HEADER_BYTES + _nbytes(obj, depth=0)


def _nbytes(obj: Any, depth: int) -> int:
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (bool,)):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, bytes):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if depth < 6 and isinstance(obj, (list, tuple, set, frozenset)):
        return 8 + sum(8 + _nbytes(x, depth + 1) for x in obj)
    if depth < 6 and isinstance(obj, dict):
        return 8 + sum(
            16 + _nbytes(k, depth + 1) + _nbytes(v, depth + 1)
            for k, v in obj.items()
        )
    fields = getattr(obj, "__dataclass_fields__", None)
    if fields is not None and depth < 6:
        return 8 + sum(
            8 + _nbytes(getattr(obj, name), depth + 1) for name in fields
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64
