"""MPI-style communication over the virtual-time scheduler.

One :class:`Communicator` per rank.  Point-to-point messages go through
per-(src, dst, tag) mailboxes with LogGP-modelled timing; collectives
rendezvous at :class:`~repro.runtime.world.CollectiveGate` objects, and
the *last* arriving rank computes the result and every rank's
completion time (``max(arrival) + model cost``), which matches the
synchronizing collectives (``MPI_Allreduce`` etc.) the paper relies on.

Ranks must issue collectives in the same order; a sequence-number check
turns the MPI undefined behaviour of mismatched collectives into a
:class:`~repro.runtime.errors.CollectiveMismatchError`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Sequence

import numpy as np

from .errors import (
    CollectiveMismatchError,
    CommTimeoutError,
    RankFailedError,
    RuntimeMisuseError,
)
from .machine import MachineSpec
from .payload import payload_nbytes
from .scheduler import Scheduler
from .world import CollectiveGate, World


def _default_sum(a: Any, b: Any) -> Any:
    """Elementwise/numeric addition used as the default reduce op."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.add(a, b)
    return a + b


class Message:
    """One in-flight point-to-point message.

    Carries the payload, its virtual arrival time, and the wire size
    computed **exactly once** at send time -- re-inspected or retried
    deliveries never re-measure (and never re-pickle) the payload.
    """

    __slots__ = ("obj", "arrival", "nbytes")

    def __init__(self, obj: Any, arrival: float, nbytes: float):
        self.obj = obj
        self.arrival = arrival
        self.nbytes = nbytes


class Request:
    """Handle for a non-blocking point-to-point operation."""

    def __init__(self, comm: "Communicator", peer: int, tag: int, kind: str):
        self._comm = comm
        self._peer = peer
        self._tag = tag
        self._kind = kind
        self._done = False
        self._result: Any = None

    @property
    def done(self) -> bool:
        return self._done

    def test(self) -> bool:
        """Try to complete without blocking; True when complete.

        For receives this consumes the message only once it has
        *arrived* in virtual time; poll-loops should charge virtual
        time between tests or they will spin at a frozen clock.
        """
        if self._done:
            return True
        comm = self._comm
        comm.sched.wait_turn(comm._grank)
        box = comm._box(self._peer, tag=self._tag)
        now = comm.sched.now(comm._grank)
        if box and box[0].arrival <= now:
            msg = box.popleft()
            comm.sched.clocks[comm._grank].advance_to(
                max(now, msg.arrival) + comm.machine.recv_overhead_seconds()
            )
            comm._account_recv(comm._g(self._peer), msg.nbytes)
            self._result = msg.obj
            self._done = True
        return self._done

    def wait(self) -> Any:
        """Block until complete; returns the received payload (or
        ``None`` for sends)."""
        if not self._done:
            self._result = self._comm.recv(self._peer, self._tag)
            self._done = True
        return self._result


class Communicator:
    """The per-rank endpoint of the simulated interconnect."""

    #: whether :meth:`recv_any` is available (the mp backend's
    #: endpoint overrides this to False)
    supports_recv_any = True

    def __init__(
        self,
        world: World,
        sched: Scheduler,
        machine: MachineSpec,
        rank: int,
        group: Optional[list[int]] = None,
        ctx_key: Any = "world",
    ):
        """``rank`` is the *global* scheduler rank of this endpoint.

        ``group`` lists the member global ranks of this communicator
        (default: all of them); ``self.rank`` is then this endpoint's
        local rank within the group, as in MPI sub-communicators.
        """
        self.world = world
        self.sched = sched
        self.machine = machine
        self._grank = rank
        self._group = list(range(world.nprocs)) if group is None else list(group)
        if rank not in self._group:
            raise RuntimeMisuseError(
                f"global rank {rank} is not a member of group {self._group}"
            )
        self.rank = self._group.index(rank)
        self.nprocs = len(self._group)
        self._ctx_key = ctx_key
        self._coll_seq = 0
        self._split_seq = 0
        # cached metric family handles (pure dict ops, no virtual time)
        m = world.metrics
        self._m_p2p_msgs = m.counter("comm.p2p.messages", ("peer", "dir"))
        self._m_p2p_bytes = m.counter("comm.p2p.bytes", ("peer", "dir"))
        self._m_coll_calls = m.counter("comm.coll.calls", ("kind",))
        self._m_coll_bytes = m.counter("comm.coll.bytes", ("kind",))

    # ------------------------------------------------------------------
    # group helpers
    # ------------------------------------------------------------------
    def _g(self, local_rank: int) -> int:
        """Translate a communicator-local rank to the global rank."""
        return self._group[local_rank]

    def _box(self, src_local: int, tag: int, dst_local: Optional[int] = None):
        """This comm's mailbox from ``src_local`` to ``dst_local``
        (default: me).  Contexts are separated per communicator, as in
        MPI."""
        dst_g = self._grank if dst_local is None else self._g(dst_local)
        key = (self._ctx_key, self._g(src_local), dst_g, tag)
        return self.world.mailboxes.setdefault(key, deque())

    def _waiter_key(self, src_local: int, tag: int):
        return (self._ctx_key, self._g(src_local), self._grank, tag)

    def _effective_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """Per-call timeout, falling back to the world default (which a
        fault plan sets; ``None`` = wait forever, the fault-free case)."""
        return self.world.comm_timeout if timeout is None else timeout

    def _raise_timeout(
        self, detail: str, involved: Sequence[int], timeout: float
    ) -> None:
        """A blocking operation's virtual-time deadline fired.

        If any involved global rank has crashed this is a detected peer
        death (:class:`RankFailedError`); otherwise the peers are alive
        but silent (:class:`CommTimeoutError`).
        """
        dead = sorted(set(involved) & set(self.sched.failed_at))
        if dead:
            raise RankFailedError(dead, detail)
        raise CommTimeoutError(self._grank, detail, timeout)

    def split(
        self, color: Optional[int], key: Optional[int] = None
    ) -> "Optional[Communicator]":
        """Collectively partition this communicator by ``color``.

        Members with equal ``color`` form a new communicator, ordered
        by ``(key, old local rank)``; members passing ``color=None``
        receive ``None`` (MPI_UNDEFINED).  Must be called by every
        member in the same program order.
        """
        sort_key = self.rank if key is None else key
        infos = self.allgather((color, sort_key))
        split_id = self._split_seq
        self._split_seq += 1
        if color is None:
            return None
        members_local = sorted(
            (lr for lr, (c, _k) in enumerate(infos) if c == color),
            key=lambda lr: (infos[lr][1], lr),
        )
        group = [self._g(lr) for lr in members_local]
        child_key = (self._ctx_key, "split", split_id, color)
        # type(self) so backend-specific communicators survive a split
        return type(self)(
            self.world,
            self.sched,
            self.machine,
            self._grank,
            group=group,
            ctx_key=child_key,
        )

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, dest: int, obj: Any, tag: int = 0) -> None:
        """Send ``obj`` to rank ``dest`` (eager, buffered).

        The payload is sized exactly once, here; the resulting
        :class:`Message` carries the cached size for the rest of its
        life.  A send to one's own rank takes a zero-copy fast path:
        the payload is handed over by reference and the (impossible)
        blocked-receiver wakeup is skipped.
        """
        self._check_peer(dest)
        self.sched.wait_turn(self._grank)
        dest_g = self._g(dest)
        to_self = dest_g == self._grank
        nbytes = payload_nbytes(obj)
        sender_dt, transit_dt = self.machine.p2p_seconds(
            nbytes,
            intra_node=(
                True if to_self
                else self.machine.same_node(self._grank, dest_g)
            ),
        )
        now = self.sched.now(self._grank)
        if self.sched.injector is not None:
            transit_dt = self.sched.injector.adjust_transit(
                self._grank, dest_g, now, transit_dt
            )
        arrival = now + transit_dt
        box = self._box(self.rank, tag, dst_local=dest)
        box.append(Message(obj, arrival, nbytes))
        self._m_p2p_msgs.inc(self._grank, key=(dest_g, "sent"))
        self._m_p2p_bytes.inc(self._grank, nbytes, key=(dest_g, "sent"))
        self.sched.advance(self._grank, sender_dt)
        if to_self:
            # a rank cannot be blocked receiving from itself while it
            # is running, so there is no waiter to look up or wake
            return
        wkey = (self._ctx_key, self._grank, dest_g, tag)
        waiter = self.world.recv_waiters.pop(wkey, None)
        if waiter is not None and self.sched.is_blocked(waiter):
            # (a recv_any waiter may already have been woken through a
            # different channel; popping its registration is enough)
            self.sched.wake(
                waiter, arrival + self.machine.recv_overhead_seconds()
            )

    def recv(
        self, source: int, tag: int = 0, timeout: Optional[float] = None
    ) -> Any:
        """Receive the next message from ``source``; blocks if none.

        With a ``timeout`` (or a world default set by an active fault
        plan), a receive that stays unmatched for that many virtual
        seconds raises :class:`RankFailedError` (the sender crashed) or
        :class:`CommTimeoutError` (sender alive but silent).
        """
        self._check_peer(source)
        self.sched.wait_turn(self._grank)
        key = self._waiter_key(source, tag)
        box = self._box(source, tag)
        if not box:
            if key in self.world.recv_waiters:
                raise RuntimeMisuseError(
                    f"two receivers on mailbox {key} (ranks "
                    f"{self.world.recv_waiters[key]} and {self._grank})"
                )
            self.world.recv_waiters[key] = self._grank
            detail = f"recv(src={source}, tag={tag})"
            eff = self._effective_timeout(timeout)
            timed_out = self.sched.block(
                self._grank, reason=detail, timeout=eff
            )
            if timed_out:
                # No sender ran before the deadline (a send would have
                # woken us and cleared it), so the box is still empty.
                self.world.recv_waiters.pop(key, None)
                self._raise_timeout(detail, [self._g(source)], eff)
            # the sender advanced our clock to the completed-receive time
            msg = box.popleft()
            self._account_recv(self._g(source), msg.nbytes)
            return msg.obj
        msg = box.popleft()
        now = self.sched.now(self._grank)
        done = max(now, msg.arrival) + self.machine.recv_overhead_seconds()
        self.sched.clocks[self._grank].advance_to(done)
        self._account_recv(self._g(source), msg.nbytes)
        return msg.obj

    def isend(self, dest: int, obj: Any, tag: int = 0) -> "Request":
        """Non-blocking send.

        Sends are eager and buffered in this runtime, so the request
        completes immediately; it exists for MPI-style symmetry.
        """
        self.send(dest, obj, tag)
        req = Request(self, dest, tag, kind="send")
        req._result = None
        req._done = True
        return req

    def irecv(self, source: int, tag: int = 0) -> "Request":
        """Non-blocking receive: returns a :class:`Request`.

        ``req.test()`` polls without blocking (the message must have
        *arrived* in virtual time); ``req.wait()`` blocks like
        :meth:`recv`.
        """
        self._check_peer(source)
        return Request(self, source, tag, kind="recv")

    def probe(self, source: int, tag: int = 0) -> bool:
        """True when a message from ``source`` has arrived (in virtual
        time) and could be received without blocking."""
        self._check_peer(source)
        self.sched.wait_turn(self._grank)
        box = self._box(source, tag)
        now = self.sched.now(self._grank)
        return bool(box) and box[0].arrival <= now

    def recv_any(
        self,
        sources: Optional[Sequence[int]] = None,
        tag: int = 0,
        timeout: Optional[float] = None,
    ) -> tuple[int, Any]:
        """Receive the next message from any of ``sources``.

        Returns ``(source, payload)``; blocks until some listed source
        has a deliverable message.  This is the wildcard receive a
        master-worker scheduler needs.
        """
        srcs = list(range(self.nprocs)) if sources is None else list(sources)
        for s in srcs:
            self._check_peer(s)
        self.sched.wait_turn(self._grank)
        found = self._pop_earliest(srcs, tag)
        if found is not None:
            return found
        # register interest on every channel, then block
        keys = []
        for s in srcs:
            key = self._waiter_key(s, tag)
            if key in self.world.recv_waiters:
                raise RuntimeMisuseError(
                    f"two receivers on mailbox {key}"
                )
            self.world.recv_waiters[key] = self._grank
            keys.append(key)
        detail = f"recv_any(sources={srcs}, tag={tag})"
        eff = self._effective_timeout(timeout)
        timed_out = self.sched.block(self._grank, reason=detail, timeout=eff)
        for key in keys:
            if self.world.recv_waiters.get(key) == self._grank:
                del self.world.recv_waiters[key]
        if timed_out:
            self._raise_timeout(detail, [self._g(s) for s in srcs], eff)
        found = self._pop_earliest(srcs, tag, ignore_arrival=True)
        assert found is not None, "woken without a deliverable message"
        return found

    def _pop_earliest(
        self,
        srcs: Sequence[int],
        tag: int,
        ignore_arrival: bool = False,
    ) -> Optional[tuple[int, Any]]:
        """Pop the earliest-arrival deliverable message among sources."""
        now = self.sched.now(self._grank)
        best_src: Optional[int] = None
        best_arrival = 0.0
        for s in srcs:
            box = self._box(s, tag)
            if not box:
                continue
            arrival = box[0].arrival
            if best_src is None or arrival < best_arrival:
                best_src, best_arrival = s, arrival
        if best_src is None:
            return None
        if not ignore_arrival and best_arrival > now:
            # a message is in flight but has not arrived yet: wait for
            # it rather than block indefinitely
            pass
        msg = self._box(best_src, tag).popleft()
        done = max(now, msg.arrival) + self.machine.recv_overhead_seconds()
        self.sched.clocks[self._grank].advance_to(done)
        self._account_recv(self._g(best_src), msg.nbytes)
        return best_src, msg.obj

    def _account_recv(self, src_g: int, nbytes: float) -> None:
        """Record one delivered message from global rank ``src_g``."""
        self._m_p2p_msgs.inc(self._grank, key=(src_g, "recv"))
        self._m_p2p_bytes.inc(self._grank, nbytes, key=(src_g, "recv"))

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.nprocs:
            raise RuntimeMisuseError(
                f"peer rank {peer} out of range [0, {self.nprocs})"
            )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronize all ranks; everyone leaves at the same time."""
        self._collective("barrier", None, nbytes=0.0)

    def bcast(self, obj: Any = None, root: int = 0, nbytes_hint: Optional[float] = None) -> Any:
        """Broadcast ``obj`` from ``root``; returns the root's object."""
        self._check_peer(root)

        def finish(payloads: list[Any]) -> list[Any]:
            return [payloads[root]] * self.nprocs

        nbytes = payload_nbytes(obj) if self.rank == root else None
        return self._collective(
            "bcast", obj, nbytes=nbytes, finisher=finish,
            nbytes_hint=nbytes_hint, root=root,
        )

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = _default_sum,
        root: int = 0,
        nbytes_hint: Optional[float] = None,
    ) -> Any:
        """Reduce values to ``root`` (others get ``None``)."""
        self._check_peer(root)

        def finish(payloads: list[Any]) -> list[Any]:
            acc = payloads[0]
            for v in payloads[1:]:
                acc = op(acc, v)
            out: list[Any] = [None] * self.nprocs
            out[root] = acc
            return out

        return self._collective(
            "reduce", value, finisher=finish, nbytes_hint=nbytes_hint,
            root=root,
        )

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] = _default_sum,
        nbytes_hint: Optional[float] = None,
    ) -> Any:
        """Reduce values and distribute the result to every rank."""

        def finish(payloads: list[Any]) -> list[Any]:
            acc = payloads[0]
            for v in payloads[1:]:
                acc = op(acc, v)
            if isinstance(acc, np.ndarray):
                return [acc.copy() for _ in range(self.nprocs)]
            return [acc] * self.nprocs

        return self._collective(
            "allreduce", value, finisher=finish, nbytes_hint=nbytes_hint
        )

    def gather(
        self,
        value: Any,
        root: int = 0,
        nbytes_hint: Optional[float] = None,
    ) -> Optional[list[Any]]:
        """Gather one value per rank into a list at ``root``."""
        self._check_peer(root)

        def finish(payloads: list[Any]) -> list[Any]:
            out: list[Any] = [None] * self.nprocs
            out[root] = list(payloads)
            return out

        return self._collective(
            "gather", value, finisher=finish, nbytes_hint=nbytes_hint,
            root=root,
        )

    def allgather(
        self, value: Any, nbytes_hint: Optional[float] = None
    ) -> list[Any]:
        """Gather one value per rank into a list at every rank."""

        def finish(payloads: list[Any]) -> list[Any]:
            return [list(payloads) for _ in range(self.nprocs)]

        return self._collective(
            "allgather", value, finisher=finish, nbytes_hint=nbytes_hint
        )

    def scatter(
        self, values: Optional[Sequence[Any]] = None, root: int = 0
    ) -> Any:
        """Scatter ``values`` (length nprocs, at root) across ranks."""
        self._check_peer(root)
        if self.rank == root:
            if values is None or len(values) != self.nprocs:
                raise RuntimeMisuseError(
                    "scatter root must supply one value per rank"
                )

        def finish(payloads: list[Any]) -> list[Any]:
            return list(payloads[root])

        return self._collective("scatter", values, finisher=finish, root=root)

    def alltoallv(
        self, per_dest: Sequence[Any], nbytes_hint: Optional[float] = None
    ) -> list[Any]:
        """Personalized all-to-all: ``per_dest[d]`` goes to rank ``d``.

        Returns the list ``[from rank 0, from rank 1, ...]`` addressed
        to this rank.  This is the postings-exchange primitive of the
        parallel indexing stage.
        """
        if len(per_dest) != self.nprocs:
            raise RuntimeMisuseError(
                f"alltoallv needs {self.nprocs} buckets, got {len(per_dest)}"
            )

        def finish(payloads: list[Any]) -> list[Any]:
            return [
                [payloads[src][dst] for src in range(self.nprocs)]
                for dst in range(self.nprocs)
            ]

        return self._collective(
            "alltoallv", list(per_dest), finisher=finish, nbytes_hint=nbytes_hint
        )

    def exscan(
        self, value: Any, op: Callable[[Any, Any], Any] = _default_sum
    ) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``None``."""

        def finish(payloads: list[Any]) -> list[Any]:
            out: list[Any] = [None] * self.nprocs
            if self.nprocs > 1:
                running = payloads[0]
                out[1] = running
                for r in range(2, self.nprocs):
                    running = op(running, payloads[r - 1])
                    out[r] = running
            return out

        return self._collective("scan", value, finisher=finish)

    # ------------------------------------------------------------------
    # engine of all collectives
    # ------------------------------------------------------------------
    def _collective(
        self,
        kind: str,
        payload: Any,
        nbytes: Optional[float] = None,
        finisher: Optional[Callable[[list[Any]], list[Any]]] = None,
        nbytes_hint: Optional[float] = None,
        root: Optional[int] = None,
    ) -> Any:
        """Execute one collective; see module docstring for semantics.

        ``nbytes_hint`` lets callers override the modelled message size
        (used by the engine to account for represented-scale payloads).
        ``root`` names the rooted rank of rooted collectives; the
        simulator ignores it (the finisher closure already knows), but
        the mp backend uses it to ship payloads only where they are
        needed.

        Each rank sizes its own payload **exactly once**, on arrival at
        the gate (and not at all when a hint is supplied); the last
        arriver takes the maximum of the cached sizes instead of
        re-measuring every fan-out leg.
        """
        self.sched.wait_turn(self._grank)
        seq = self._coll_seq
        self._coll_seq += 1
        gate_key = (self._ctx_key, seq)
        gate = self.world.gates.get(gate_key)
        if gate is None:
            gate = CollectiveGate(kind, self.nprocs)
            self.world.gates[gate_key] = gate
        elif gate.kind != kind:
            raise CollectiveMismatchError(
                f"rank {self.rank} called {kind!r} as collective #{seq} "
                f"but another rank called {gate.kind!r}"
            )
        now = self.sched.now(self._grank)
        my_size: Optional[float] = nbytes
        if my_size is None and nbytes_hint is None:
            my_size = float(payload_nbytes(payload))
        self._m_coll_calls.inc(self._grank, key=(kind,))
        self._m_coll_bytes.inc(
            self._grank,
            my_size if my_size is not None else float(nbytes_hint or 0.0),
            key=(kind,),
        )
        gate.arrivals[self.rank] = (now, payload, my_size)
        if len(gate.arrivals) < self.nprocs:
            detail = f"{kind} (collective #{seq})"
            eff = self._effective_timeout(None)
            timed_out = self.sched.block(
                self._grank, reason=detail, timeout=eff
            )
            if timed_out:
                involved = [self._g(r) for r in range(self.nprocs)]
                self._raise_timeout(detail, involved, eff)
        else:
            # Last arriver: compute results and completion times.
            payloads = [gate.arrivals[r][1] for r in range(self.nprocs)]
            if finisher is None:
                gate.results = [None] * self.nprocs
            else:
                gate.results = finisher(payloads)
            size = nbytes_hint
            if size is None:
                size = max(
                    s for _t, _p, s in gate.arrivals.values()
                    if s is not None
                )
            t0 = max(t for t, _p, _s in gate.arrivals.values())
            done = t0 + self.machine.collective_seconds(
                kind, self.nprocs, float(size)
            )
            for r in range(self.nprocs):
                if r != self.rank:
                    self.sched.wake(self._g(r), done)
            self.sched.clocks[self._grank].advance_to(done)
        assert gate.results is not None
        result = gate.results[self.rank]
        gate.reads += 1
        if gate.reads == self.nprocs:
            del self.world.gates[gate_key]
        return result
