"""Deterministic per-rank runtime metrics (counters, gauges, histograms).

The paper's contribution is *measured* scaling behaviour: per-component
times, the communication cost of the distributed hashmap and task
queue, and the load balance across processors (IPPS 2007 §4.2).  This
module is the first-class measurement substrate behind those numbers: a
:class:`MetricsRegistry` is created per simulated run (one per
:class:`~repro.runtime.world.World`) and threaded through the runtime
and the Global Arrays layer, which record

* per-(src, dst) point-to-point messages and bytes (``comm.p2p.*``),
* per-collective-operation call and byte totals (``comm.coll.*``),
* ARMCI-style RPC and one-sided transfer volumes (``comm.rpc.*``,
  ``comm.onesided.*``),
* hashmap RPC locality and retries (``hashmap.*``),
* task-queue chunks claimed and lease reclamations (``taskq.*``),
* per-rank blocked time (``sched.*``), and
* per-stage counter deltas plus busy/blocked seconds (captured by
  :meth:`repro.runtime.context.RankContext.region`).

Determinism contract
--------------------
Recording a metric **never charges virtual time** and never consults
wall-clock time or random state: every recorded value is a pure
function of the deterministic simulation (virtual clocks, payload
sizes, operation counts).  Because every recording site runs while its
rank holds the scheduler turn (or touches only rank-private state), the
registry's contents -- and the canonical JSON produced by
:meth:`MetricsRegistry.snapshot` -- are bit-identical across repeated
runs at a fixed seed and across the fast-path and
``REPRO_SCHED_SLOWPATH=1`` scheduler mechanisms.  That makes the
snapshot a cheap determinism oracle: CI diffs two JSON documents
instead of parsing full Chrome traces.

Snapshot schema
---------------
:meth:`MetricsRegistry.snapshot` returns a JSON-native dict versioned
by ``schema`` (currently ``"repro-metrics/1"``); see
:func:`validate_snapshot`.  :func:`merge_snapshots` combines snapshots
(counters/histograms add, gauges take the max) and is associative and
order-independent, so partial snapshots may be aggregated in any
order.  :func:`to_prometheus` renders the Prometheus text exposition
format for scraping.
"""

from __future__ import annotations

import operator
from bisect import bisect_left
from typing import Any, Optional, Sequence

#: snapshot schema identifier; bump when the layout changes shape
SCHEMA = "repro-metrics/1"

#: virtual-seconds bucket upper bounds for blocked-time histograms
#: (log-spaced; the implicit final bucket is +Inf)
BLOCK_SECONDS_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

_KINDS = ("counter", "gauge", "histogram")


class MetricsSchemaError(ValueError):
    """A metrics snapshot has an unknown or incompatible schema."""


def _norm_label(v: Any):
    """Normalize a label value to a JSON-native str/int/float."""
    if isinstance(v, str):
        return v
    try:
        return operator.index(v)  # ints incl. numpy integers
    except TypeError:
        return float(v)


class MetricFamily:
    """One named metric with fixed label names and per-rank values.

    Values are keyed by the tuple of label values; label tuples within
    a family must be homogeneous in type so the snapshot ordering is
    well-defined.  Counter and gauge values are floats; histogram
    values are ``[bucket_counts, sum, count]`` records.
    """

    __slots__ = ("name", "kind", "label_names", "bounds", "per_rank")

    def __init__(
        self,
        name: str,
        kind: str,
        nprocs: int,
        label_names: tuple[str, ...] = (),
        bounds: Optional[tuple[float, ...]] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.label_names = tuple(label_names)
        self.bounds = tuple(bounds) if bounds is not None else None
        self.per_rank: list[dict] = [{} for _ in range(nprocs)]

    def inc(self, rank: int, value: float = 1.0, key: tuple = ()) -> None:
        """Add ``value`` to the counter at ``key`` on ``rank``."""
        d = self.per_rank[rank]
        d[key] = d.get(key, 0.0) + value

    def set(self, rank: int, value: float, key: tuple = ()) -> None:
        """Set the gauge at ``key`` on ``rank``."""
        self.per_rank[rank][key] = float(value)

    def observe(self, rank: int, value: float, key: tuple = ()) -> None:
        """Record one sample into the histogram at ``key`` on ``rank``."""
        d = self.per_rank[rank]
        rec = d.get(key)
        if rec is None:
            rec = d[key] = [[0] * (len(self.bounds) + 1), 0.0, 0]
        rec[0][bisect_left(self.bounds, value)] += 1
        rec[1] += value
        rec[2] += 1


class MetricsRegistry:
    """All metric families of one simulated run, plus stage captures."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self._families: dict[str, MetricFamily] = {}
        #: stage name -> {"seconds": [per rank], "blocked_seconds":
        #: [per rank], "counters": {name: {(rank, key): delta}}}
        self._stages: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # family registration (idempotent; shape-checked)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        label_names: Sequence[str],
        bounds: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            fam = MetricFamily(
                name, kind, self.nprocs, tuple(label_names),
                tuple(bounds) if bounds is not None else None,
            )
            self._families[name] = fam
            return fam
        if fam.kind != kind or fam.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} re-registered as {kind}{tuple(label_names)} "
                f"but exists as {fam.kind}{fam.label_names}"
            )
        return fam

    def counter(self, name: str, label_names: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", label_names)

    def gauge(self, name: str, label_names: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", label_names)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = BLOCK_SECONDS_BOUNDS,
        label_names: Sequence[str] = (),
    ) -> MetricFamily:
        return self._family(name, "histogram", label_names, bounds)

    # ------------------------------------------------------------------
    # per-stage capture (used by RankContext.region)
    # ------------------------------------------------------------------
    def rank_totals(self, rank: int) -> dict[tuple, float]:
        """Flat ``(family, key) -> value`` view of one rank's counters."""
        out: dict[tuple, float] = {}
        for name, fam in self._families.items():
            if fam.kind != "counter":
                continue
            for key, value in fam.per_rank[rank].items():
                out[(name, key)] = value
        return out

    def rank_deltas(
        self, rank: int, before: dict[tuple, float]
    ) -> dict[tuple, float]:
        """Counter movement on ``rank`` since a :meth:`rank_totals` call."""
        out: dict[tuple, float] = {}
        for k, v in self.rank_totals(rank).items():
            d = v - before.get(k, 0.0)
            if d != 0.0:
                out[k] = d
        return out

    def record_stage(
        self,
        stage: str,
        rank: int,
        seconds: float,
        blocked_seconds: float,
        deltas: dict[tuple, float],
    ) -> None:
        """Accumulate one rank's traversal of a named stage region."""
        st = self._stages.get(stage)
        if st is None:
            st = self._stages[stage] = {
                "seconds": [0.0] * self.nprocs,
                "blocked_seconds": [0.0] * self.nprocs,
                "counters": {},
            }
        st["seconds"][rank] += seconds
        st["blocked_seconds"][rank] += blocked_seconds
        counters = st["counters"]
        for (name, key), v in deltas.items():
            d = counters.setdefault(name, {})
            rk = (rank, key)
            d[rk] = d.get(rk, 0.0) + v

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The run's metrics as a canonical, JSON-native document.

        Deterministic: values appear sorted by ``(rank, label key)``
        and families by name, so ``json.dumps(snapshot, sort_keys=True)``
        is a byte-stable digest of the run's measured behaviour.
        """
        counters: dict[str, dict] = {}
        gauges: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._families):
            fam = self._families[name]
            values = []
            for rank, d in enumerate(fam.per_rank):
                for key, value in d.items():
                    entry = {
                        "rank": rank,
                        "key": [_norm_label(v) for v in key],
                    }
                    if fam.kind == "histogram":
                        entry["counts"] = list(value[0])
                        entry["sum"] = float(value[1])
                        entry["count"] = int(value[2])
                    else:
                        entry["value"] = float(value)
                    values.append(entry)
            values.sort(key=lambda e: (e["rank"], e["key"]))
            doc = {"labels": list(fam.label_names), "values": values}
            if fam.kind == "counter":
                counters[name] = doc
            elif fam.kind == "gauge":
                gauges[name] = doc
            else:
                doc["bounds"] = list(fam.bounds)
                histograms[name] = doc
        stages: dict[str, dict] = {}
        for stage in sorted(self._stages):
            st = self._stages[stage]
            stage_counters: dict[str, dict] = {}
            for name in sorted(st["counters"]):
                values = [
                    {
                        "rank": rank,
                        "key": [_norm_label(v) for v in key],
                        "value": float(v),
                    }
                    for (rank, key), v in st["counters"][name].items()
                ]
                values.sort(key=lambda e: (e["rank"], e["key"]))
                stage_counters[name] = {"values": values}
            stages[stage] = {
                "seconds": [float(s) for s in st["seconds"]],
                "blocked_seconds": [
                    float(s) for s in st["blocked_seconds"]
                ],
                "counters": stage_counters,
            }
        return {
            "schema": SCHEMA,
            "nprocs": self.nprocs,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "stages": stages,
        }


# ----------------------------------------------------------------------
# snapshot-level operations
# ----------------------------------------------------------------------
def validate_snapshot(snap: dict) -> dict:
    """Check a snapshot's schema; returns it unchanged.

    Raises :class:`MetricsSchemaError` on an unknown schema version or
    a structurally foreign document, so readers fail loudly instead of
    silently misinterpreting a future layout.
    """
    if not isinstance(snap, dict):
        raise MetricsSchemaError(
            f"metrics snapshot must be a dict, got {type(snap).__name__}"
        )
    schema = snap.get("schema")
    if schema != SCHEMA:
        raise MetricsSchemaError(
            f"unsupported metrics schema {schema!r} (expected {SCHEMA!r})"
        )
    for section in ("nprocs", "counters", "gauges", "histograms", "stages"):
        if section not in snap:
            raise MetricsSchemaError(f"snapshot missing {section!r}")
    return snap


def _merge_values(a_doc: dict, b_doc: dict, kind: str) -> dict:
    """Merge two family documents of the same name."""
    if a_doc.get("labels") != b_doc.get("labels"):
        raise MetricsSchemaError(
            f"label mismatch: {a_doc.get('labels')} vs {b_doc.get('labels')}"
        )
    if kind == "histogram" and a_doc.get("bounds") != b_doc.get("bounds"):
        raise MetricsSchemaError(
            f"histogram bounds mismatch: {a_doc.get('bounds')} vs "
            f"{b_doc.get('bounds')}"
        )
    merged: dict[tuple, dict] = {}
    for entry in list(a_doc["values"]) + list(b_doc["values"]):
        k = (entry["rank"], tuple(entry["key"]))
        cur = merged.get(k)
        if cur is None:
            merged[k] = {
                key: (list(v) if isinstance(v, list) else v)
                for key, v in entry.items()
            }
        elif kind == "histogram":
            cur["counts"] = [
                x + y for x, y in zip(cur["counts"], entry["counts"])
            ]
            cur["sum"] += entry["sum"]
            cur["count"] += entry["count"]
        elif kind == "gauge":
            cur["value"] = max(cur["value"], entry["value"])
        else:
            cur["value"] += entry["value"]
    out = dict(a_doc)
    out["values"] = sorted(
        merged.values(), key=lambda e: (e["rank"], e["key"])
    )
    return out


def merge_snapshots(a: dict, b: dict) -> dict:
    """Combine two snapshots of the same world shape.

    Counters and histograms add, gauges take the elementwise maximum,
    and stage seconds/deltas add -- all associative, commutative
    operations, so merging any number of partial snapshots yields the
    same result in any order (property-tested).
    """
    validate_snapshot(a)
    validate_snapshot(b)
    if a["nprocs"] != b["nprocs"]:
        raise MetricsSchemaError(
            f"cannot merge snapshots with nprocs {a['nprocs']} and "
            f"{b['nprocs']}"
        )
    out = {"schema": SCHEMA, "nprocs": a["nprocs"]}
    for section, kind in (
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("histograms", "histogram"),
    ):
        merged: dict[str, dict] = {}
        for name in sorted(set(a[section]) | set(b[section])):
            in_a, in_b = name in a[section], name in b[section]
            if in_a and in_b:
                merged[name] = _merge_values(
                    a[section][name], b[section][name], kind
                )
            else:
                src = a[section][name] if in_a else b[section][name]
                merged[name] = {
                    **src,
                    "values": sorted(
                        src["values"], key=lambda e: (e["rank"], e["key"])
                    ),
                }
        out[section] = merged
    stages: dict[str, dict] = {}
    for stage in sorted(set(a["stages"]) | set(b["stages"])):
        sa = a["stages"].get(stage)
        sb = b["stages"].get(stage)
        if sa is None or sb is None:
            src = sa if sa is not None else sb
            stages[stage] = {
                "seconds": list(src["seconds"]),
                "blocked_seconds": list(src["blocked_seconds"]),
                "counters": {
                    name: {
                        "values": sorted(
                            doc["values"],
                            key=lambda e: (e["rank"], e["key"]),
                        )
                    }
                    for name, doc in src["counters"].items()
                },
            }
            continue
        counters: dict[str, dict] = {}
        for name in sorted(set(sa["counters"]) | set(sb["counters"])):
            da = sa["counters"].get(name, {"values": []})
            db = sb["counters"].get(name, {"values": []})
            counters[name] = {
                "values": _merge_values(
                    {"labels": None, "values": da["values"]},
                    {"labels": None, "values": db["values"]},
                    "counter",
                )["values"]
            }
        stages[stage] = {
            "seconds": [
                x + y for x, y in zip(sa["seconds"], sb["seconds"])
            ],
            "blocked_seconds": [
                x + y
                for x, y in zip(
                    sa["blocked_seconds"], sb["blocked_seconds"]
                )
            ],
            "counters": counters,
        }
    out["stages"] = stages
    return out


def counter_totals(snap: dict) -> dict[str, float]:
    """Each counter family's total over all ranks and label keys."""
    return {
        name: float(sum(e["value"] for e in doc["values"]))
        for name, doc in snap["counters"].items()
    }


# ----------------------------------------------------------------------
# derived reports
# ----------------------------------------------------------------------
def comm_matrix(snap: dict, metric: str = "bytes"):
    """The P x P communication matrix ``M[src, dst]``.

    ``metric="bytes"`` aggregates point-to-point payload bytes, RPC
    request/response bytes, and one-sided transfer bytes; the diagonal
    is rank-local volume (self-sends, local one-sided windows).
    ``metric="messages"`` counts p2p messages and RPC calls.  Each
    transfer is attributed once, in its direction of data flow.
    """
    import numpy as np

    p = int(snap["nprocs"])
    m = np.zeros((p, p))
    counters = snap["counters"]

    def entries(name):
        doc = counters.get(name)
        return doc["values"] if doc else ()

    if metric == "bytes":
        for e in entries("comm.p2p.bytes"):
            peer, direction = e["key"]
            if direction == "sent":
                m[e["rank"], int(peer)] += e["value"]
        for e in entries("comm.rpc.bytes"):
            peer, direction = e["key"]
            if direction == "out":
                m[e["rank"], int(peer)] += e["value"]
            else:  # response bytes flow peer -> caller
                m[int(peer), e["rank"]] += e["value"]
        for e in entries("comm.onesided.bytes"):
            peer, direction = e["key"]
            if direction == "get":  # data flows owner -> caller
                m[int(peer), e["rank"]] += e["value"]
            else:
                m[e["rank"], int(peer)] += e["value"]
    elif metric == "messages":
        for e in entries("comm.p2p.messages"):
            peer, direction = e["key"]
            if direction == "sent":
                m[e["rank"], int(peer)] += e["value"]
        for e in entries("comm.rpc.calls"):
            m[e["rank"], int(e["key"][0])] += e["value"]
    else:
        raise ValueError(f"unknown comm matrix metric {metric!r}")
    return m


def collective_totals(snap: dict) -> dict[str, dict[str, float]]:
    """Per-collective-kind call and contributed-byte totals."""
    out: dict[str, dict[str, float]] = {}
    for name, field in (("comm.coll.calls", "calls"),
                        ("comm.coll.bytes", "bytes")):
        doc = snap["counters"].get(name)
        if not doc:
            continue
        for e in doc["values"]:
            kind = str(e["key"][0])
            out.setdefault(kind, {"calls": 0.0, "bytes": 0.0})
            out[kind][field] += e["value"]
    return out


def stage_imbalance(snap: dict) -> dict[str, dict[str, float]]:
    """Per-stage busy-time statistics and load-imbalance factor.

    Busy time is the virtual time a rank spent inside the stage region
    minus the time it sat blocked (waiting on messages, collectives, or
    wakes) there.  The imbalance factor ``max(busy) / mean(busy)`` is
    1.0 for a perfectly balanced stage -- the quantity behind the
    paper's dynamic-load-balancing claim (Fig. 9).
    """
    out: dict[str, dict[str, float]] = {}
    for stage, st in snap["stages"].items():
        busy = [
            s - b
            for s, b in zip(st["seconds"], st["blocked_seconds"])
        ]
        mean = sum(busy) / len(busy) if busy else 0.0
        peak = max(busy) if busy else 0.0
        out[stage] = {
            "max_busy": peak,
            "mean_busy": mean,
            "imbalance": (peak / mean) if mean > 0 else 1.0,
        }
    return out


def hashmap_locality(snap: dict) -> dict[str, dict[str, float]]:
    """Local/remote RPC split and retry counts per distributed hashmap."""
    out: dict[str, dict[str, float]] = {}
    doc = snap["counters"].get("hashmap.ops")
    if doc:
        for e in doc["values"]:
            name, locality = str(e["key"][0]), str(e["key"][1])
            rec = out.setdefault(
                name, {"local": 0.0, "remote": 0.0, "retries": 0.0}
            )
            rec[locality] += e["value"]
    doc = snap["counters"].get("hashmap.rpc_retries")
    if doc:
        for e in doc["values"]:
            name = str(e["key"][0])
            rec = out.setdefault(
                name, {"local": 0.0, "remote": 0.0, "retries": 0.0}
            )
            rec["retries"] += e["value"]
    for rec in out.values():
        total = rec["local"] + rec["remote"]
        rec["local_fraction"] = rec["local"] / total if total else 0.0
    return out


def taskqueue_summary(snap: dict) -> dict[str, dict[str, float]]:
    """Chunks claimed (own vs stolen) and lease reclaims per queue."""
    out: dict[str, dict[str, float]] = {}

    def rec(name):
        return out.setdefault(
            name,
            {"own": 0.0, "stolen": 0.0, "tasks": 0.0, "reclaims": 0.0},
        )

    doc = snap["counters"].get("taskq.chunks")
    if doc:
        for e in doc["values"]:
            rec(str(e["key"][0]))[str(e["key"][1])] += e["value"]
    doc = snap["counters"].get("taskq.tasks")
    if doc:
        for e in doc["values"]:
            rec(str(e["key"][0]))["tasks"] += e["value"]
    doc = snap["counters"].get("taskq.lease_reclaims")
    if doc:
        for e in doc["values"]:
            rec(str(e["key"][0]))["reclaims"] += e["value"]
    return out


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return (
                f"{n:.0f}{unit}" if unit == "B" else f"{n:.2f}{unit}"
            )
        n /= 1024.0
    return f"{n:.2f}TB"  # pragma: no cover - unreachable


def serving_summary(snap: dict) -> dict:
    """Serving-layer counters, aggregated for the text report.

    Returns an empty dict when the snapshot holds no ``serve.*``
    families (i.e. the run was not a broker session).
    """
    counters = snap["counters"]
    if not any(name.startswith("serve.") for name in counters):
        return {}

    def _total(name: str) -> float:
        doc = counters.get(name)
        if doc is None:
            return 0.0
        return float(sum(e["value"] for e in doc["values"]))

    def _by_key(name: str) -> dict[str, float]:
        doc = counters.get(name)
        if doc is None:
            return {}
        out: dict[str, float] = {}
        for e in doc["values"]:
            key = str(e["key"][0]) if e["key"] else ""
            out[key] = out.get(key, 0.0) + float(e["value"])
        return out

    out = {
        "queries_by_kind": _by_key("serve.queries"),
        "cache": {
            "hit": _total("serve.cache.hit"),
            "miss": _total("serve.cache.miss"),
            "evict": _total("serve.cache.evict"),
        },
        "rejected": _total("serve.rejected"),
        "degraded": _total("serve.degraded"),
        "bytes_scanned_by_shard": _by_key("serve.shard.bytes_scanned"),
        "blocks_skipped_by_shard": _by_key(
            "serve.shard.blocks_skipped"
        ),
        "blocks_skipped": _total("serve.shard.blocks_skipped"),
    }
    # replicated-tier families appear only when the router tier served
    # the session; key presence is what the report renderer gates on
    if "serve.shed" in counters or "serve.failover" in counters:
        out["replica"] = {
            "shed_by_priority": _by_key("serve.shed"),
            "shed": _total("serve.shed"),
            "failovers": _total("serve.failover"),
            "hedges": _total("serve.hedge"),
            "suspicions": _total("serve.replica.suspect"),
            "downs": _total("serve.replica.down"),
        }
    return out


def ingest_summary(snap: dict) -> dict:
    """Live-ingest counters, aggregated for the text report.

    Returns an empty dict when the snapshot holds no ``ingest.*``
    families (i.e. no ingest driver ran and the broker never
    hot-reloaded a generation).
    """
    counters = snap["counters"]
    if not any(name.startswith("ingest.") for name in counters):
        return {}

    def _total(name: str) -> float:
        doc = counters.get(name)
        if doc is None:
            return 0.0
        return float(sum(e["value"] for e in doc["values"]))

    return {
        "docs_ingested": _total("ingest.docs"),
        "null_signatures": _total("ingest.null_signatures"),
        "generations_published": _total("ingest.generations"),
        "compactions": _total("ingest.compactions"),
        "broker_reloads": _total("ingest.broker.reloads"),
        "rebuild_flags": _total("ingest.rebuild_flags"),
    }


def workbench_summary(snap: dict) -> dict:
    """Workbench-tier counters, aggregated for the text report.

    Returns an empty dict when the snapshot holds no ``workbench.*``
    families (i.e. no analyst session ran above the broker).
    """
    counters = snap["counters"]
    if not any(name.startswith("workbench.") for name in counters):
        return {}

    def _total(name: str) -> float:
        doc = counters.get(name)
        if doc is None:
            return 0.0
        return float(sum(e["value"] for e in doc["values"]))

    def _by_key(name: str) -> dict[str, float]:
        doc = counters.get(name)
        if doc is None:
            return {}
        out: dict[str, float] = {}
        for e in doc["values"]:
            key = str(e["key"][0]) if e["key"] else ""
            out[key] = out.get(key, 0.0) + float(e["value"])
        return out

    hits = _total("workbench.artifact.hit")
    misses = _total("workbench.artifact.miss")
    lookups = hits + misses
    return {
        "ops_by_verb": _by_key("workbench.ops"),
        "sessions": {
            "opened": _total("workbench.sessions.opened"),
            "closed": _total("workbench.sessions.closed"),
            "evicted": _total("workbench.sessions.evicted"),
        },
        "sets_saved": _total("workbench.sets.saved"),
        "rejected_by_reason": _by_key("workbench.rejected"),
        "rejected": _total("workbench.rejected"),
        "artifact_cache": {
            "hit": hits,
            "miss": misses,
            "evict": _total("workbench.artifact.evict"),
            "hit_rate": hits / lookups if lookups else 0.0,
        },
    }


def facets_summary(snap: dict) -> dict:
    """Faceted-analytics counters, aggregated for the text report.

    Returns an empty dict when the snapshot holds no ``facets.*``
    families (i.e. the session served no window queries -- unstamped
    stores never register them).  Aggregation sums over ranks and
    label keys, so the result is identical across the fastpath and
    slowpath schedulers and across shard counts for a fixed workload.
    """
    counters = snap["counters"]
    if not any(name.startswith("facets.") for name in counters):
        return {}

    def _total(name: str) -> float:
        doc = counters.get(name)
        if doc is None:
            return 0.0
        return float(sum(e["value"] for e in doc["values"]))

    def _by_key(name: str) -> dict[str, float]:
        doc = counters.get(name)
        if doc is None:
            return {}
        out: dict[str, float] = {}
        for e in doc["values"]:
            key = str(e["key"][0]) if e["key"] else ""
            out[key] = out.get(key, 0.0) + float(e["value"])
        return out

    return {
        "windows_by_kind": _by_key("facets.windows"),
        "windows_served": _total("facets.windows"),
        "facet_bytes_scanned": _total("facets.bytes_scanned"),
        "emerging_term_hits": _total("facets.emerging_hits"),
    }


def render_report(snap: dict) -> str:
    """Human-readable metrics report (the ``metrics-report`` command).

    Prints the P x P communication matrix, per-collective totals, the
    per-stage load-imbalance factors, hashmap RPC locality,
    task-queue stealing statistics, and (for broker sessions) the
    serving-layer counters.
    """
    validate_snapshot(snap)
    p = int(snap["nprocs"])
    lines: list[str] = [f"metrics report (schema {snap['schema']}, P={p})"]

    m = comm_matrix(snap, "bytes")
    lines.append("")
    lines.append(
        "communication matrix (bytes moved src -> dst; "
        "p2p + RPC + one-sided; diagonal = rank-local):"
    )
    width = max(
        9, max((len(_fmt_bytes(v)) for row in m for v in row), default=9)
    )
    header = "  src\\dst " + "".join(f"{d:>{width + 1}}" for d in range(p))
    lines.append(header)
    for src in range(p):
        row = "".join(f" {_fmt_bytes(v):>{width}}" for v in m[src])
        lines.append(f"  {src:>7} {row}")
    total = float(m.sum())
    off_diag = total - float(m.trace())
    lines.append(
        f"  total {_fmt_bytes(total)} "
        f"({_fmt_bytes(off_diag)} cross-rank)"
    )

    colls = collective_totals(snap)
    if colls:
        lines.append("")
        lines.append("collective operations:")
        lines.append(f"  {'kind':<12} {'calls':>8} {'bytes':>12}")
        for kind in sorted(colls):
            c = colls[kind]
            lines.append(
                f"  {kind:<12} {c['calls']:>8.0f} "
                f"{_fmt_bytes(c['bytes']):>12}"
            )

    stages = stage_imbalance(snap)
    if stages:
        lines.append("")
        lines.append(
            "per-stage load balance "
            "(busy = region - blocked virtual seconds):"
        )
        lines.append(
            f"  {'stage':<14} {'max busy':>10} {'mean busy':>10} "
            f"{'imbalance':>10}"
        )
        for stage in sorted(stages):
            s = stages[stage]
            lines.append(
                f"  {stage:<14} {s['max_busy']:>10.4f} "
                f"{s['mean_busy']:>10.4f} {s['imbalance']:>9.3f}x"
            )

    hmaps = hashmap_locality(snap)
    if hmaps:
        lines.append("")
        lines.append("distributed hashmap RPC locality:")
        for name in sorted(hmaps):
            h = hmaps[name]
            lines.append(
                f"  {name}: {h['local']:.0f} local / "
                f"{h['remote']:.0f} remote "
                f"({h['local_fraction']:.1%} local), "
                f"{h['retries']:.0f} retries"
            )

    queues = taskqueue_summary(snap)
    if queues:
        lines.append("")
        lines.append("task queues (dynamic load balancing):")
        for name in sorted(queues):
            q = queues[name]
            lines.append(
                f"  {name}: {q['own']:.0f} own + {q['stolen']:.0f} "
                f"stolen chunks ({q['tasks']:.0f} tasks), "
                f"{q['reclaims']:.0f} lease reclaims"
            )

    serving = serving_summary(snap)
    if serving:
        lines.append("")
        lines.append("serving layer (broker session):")
        kinds = serving["queries_by_kind"]
        total_q = sum(kinds.values())
        mix = ", ".join(
            f"{k}={kinds[k]:.0f}" for k in sorted(kinds)
        )
        lines.append(f"  queries: {total_q:.0f} ({mix})")
        cache = serving["cache"]
        lookups = cache["hit"] + cache["miss"]
        rate = cache["hit"] / lookups if lookups else 0.0
        lines.append(
            f"  cache: {cache['hit']:.0f} hits / "
            f"{cache['miss']:.0f} misses ({rate:.1%} hit rate), "
            f"{cache['evict']:.0f} evictions"
        )
        lines.append(
            f"  admission: {serving['rejected']:.0f} rejected; "
            f"degraded responses: {serving['degraded']:.0f}"
        )
        replica = serving.get("replica")
        if replica:
            by_p = replica["shed_by_priority"]
            shed_mix = ", ".join(
                f"p{p_}={by_p[p_]:.0f}" for p_ in sorted(by_p)
            )
            lines.append(
                f"  replica tier: {replica['failovers']:.0f} failovers, "
                f"{replica['hedges']:.0f} hedged requests; "
                f"shed: {replica['shed']:.0f}"
                + (f" ({shed_mix})" if shed_mix else "")
            )
            lines.append(
                f"  replica health: {replica['suspicions']:.0f} "
                f"suspicions, {replica['downs']:.0f} confirmed down"
            )
        scanned = serving["bytes_scanned_by_shard"]
        if scanned:
            per_shard = ", ".join(
                f"shard {s}: {_fmt_bytes(scanned[s])}"
                for s in sorted(scanned, key=int)
            )
            lines.append(f"  bytes scanned: {per_shard}")
        skipped = serving.get("blocks_skipped_by_shard", {})
        if skipped and serving.get("blocks_skipped", 0.0) > 0:
            per_shard = ", ".join(
                f"shard {s}: {skipped[s]:.0f}"
                for s in sorted(skipped, key=int)
            )
            lines.append(
                f"  posting blocks skipped (block-max pruning): "
                f"{serving['blocks_skipped']:.0f} ({per_shard})"
            )

    facets = facets_summary(snap)
    if facets:
        lines.append("")
        lines.append("faceted analytics (window queries):")
        kinds = facets["windows_by_kind"]
        mix = ", ".join(f"{k}={kinds[k]:.0f}" for k in sorted(kinds))
        lines.append(
            f"  windows served: {facets['windows_served']:.0f}"
            + (f" ({mix})" if mix else "")
        )
        lines.append(
            f"  facet bytes scanned: "
            f"{_fmt_bytes(facets['facet_bytes_scanned'])}; "
            f"emerging-term hits: "
            f"{facets['emerging_term_hits']:.0f}"
        )

    workbench = workbench_summary(snap)
    if workbench:
        lines.append("")
        lines.append("workbench tier (analyst sessions):")
        verbs = workbench["ops_by_verb"]
        total_ops = sum(verbs.values())
        mix = ", ".join(f"{v}={verbs[v]:.0f}" for v in sorted(verbs))
        lines.append(f"  ops: {total_ops:.0f} ({mix})")
        sess = workbench["sessions"]
        lines.append(
            f"  sessions: {sess['opened']:.0f} opened / "
            f"{sess['closed']:.0f} closed / "
            f"{sess['evicted']:.0f} evicted (TTL); "
            f"sets saved: {workbench['sets_saved']:.0f}"
        )
        art = workbench["artifact_cache"]
        lines.append(
            f"  artifact cache: {art['hit']:.0f} hits / "
            f"{art['miss']:.0f} misses "
            f"({art['hit_rate']:.1%} hit rate), "
            f"{art['evict']:.0f} evictions"
        )
        by_r = workbench["rejected_by_reason"]
        if workbench["rejected"]:
            rmix = ", ".join(
                f"{r}={by_r[r]:.0f}" for r in sorted(by_r)
            )
            lines.append(
                f"  quota/contract rejections: "
                f"{workbench['rejected']:.0f} ({rmix})"
            )

    ingest = ingest_summary(snap)
    if ingest:
        lines.append("")
        lines.append("ingest layer (live generations):")
        lines.append(
            f"  docs ingested: {ingest['docs_ingested']:.0f} "
            f"({ingest['null_signatures']:.0f} null signatures)"
        )
        lines.append(
            f"  generations published: "
            f"{ingest['generations_published']:.0f}; "
            f"compactions: {ingest['compactions']:.0f}; "
            f"broker hot-reloads: {ingest['broker_reloads']:.0f}"
        )
        if ingest["rebuild_flags"]:
            lines.append(
                f"  full-model rebuild flagged "
                f"{ingest['rebuild_flags']:.0f} time(s) "
                "(null-signature rate above threshold)"
            )
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    return "repro_" + "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )


def _prom_labels(rank: int, label_names, key, extra=()) -> str:
    parts = [f'rank="{rank}"']
    parts += [f'{n}="{v}"' for n, v in zip(label_names, key)]
    parts += [f'{n}="{v}"' for n, v in extra]
    return "{" + ",".join(parts) + "}"


def to_prometheus(snap: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Optional scrape-side integration: pipe this to a file served by
    ``node_exporter``'s textfile collector (or any HTTP endpoint) to
    chart simulated runs with standard dashboards.
    """
    validate_snapshot(snap)
    lines: list[str] = []
    for section, prom_type in (
        ("counters", "counter"), ("gauges", "gauge")
    ):
        for name, doc in snap[section].items():
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} {prom_type}")
            for e in doc["values"]:
                labels = _prom_labels(e["rank"], doc["labels"], e["key"])
                lines.append(f"{pname}{labels} {e['value']}")
    for name, doc in snap["histograms"].items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        bounds = list(doc["bounds"]) + ["+Inf"]
        for e in doc["values"]:
            cum = 0
            for le, count in zip(bounds, e["counts"]):
                cum += count
                labels = _prom_labels(
                    e["rank"], doc["labels"], e["key"], (("le", le),)
                )
                lines.append(f"{pname}_bucket{labels} {cum}")
            labels = _prom_labels(e["rank"], doc["labels"], e["key"])
            lines.append(f"{pname}_sum{labels} {e['sum']}")
            lines.append(f"{pname}_count{labels} {e['count']}")
    return "\n".join(lines) + "\n"
