"""Exception types for the virtual-time SPMD runtime."""

from __future__ import annotations

from typing import Iterable, Optional


class ClusterError(Exception):
    """Base class for all runtime errors."""


class DeadlockError(ClusterError):
    """Raised when every live rank is blocked and no wake-up can occur.

    Carries the set of blocked ranks and, when available, a short
    description of what each rank was blocked on, its virtual clock at
    detection time, and the virtual seconds it had already spent
    blocked over the whole run -- enough to diagnose which rank stalled
    first and why.
    """

    def __init__(
        self,
        blocked: dict[int, str],
        clocks: Optional[dict[int, float]] = None,
        blocked_time: Optional[dict[int, float]] = None,
    ):
        self.blocked = dict(blocked)
        self.clocks = dict(clocks) if clocks else {}
        self.blocked_time = dict(blocked_time) if blocked_time else {}
        parts = []
        for r, w in sorted(self.blocked.items()):
            detail = f"rank {r}: {w}"
            if r in self.clocks:
                detail += f" [t={self.clocks[r]:.6f}s"
                if r in self.blocked_time:
                    detail += f", blocked {self.blocked_time[r]:.6f}s total"
                detail += "]"
            parts.append(detail)
        super().__init__(
            f"deadlock: all live ranks blocked ({', '.join(parts)})"
        )


class ClusterAborted(ClusterError):
    """Raised inside victim ranks when another rank failed.

    The original failure is re-raised in the driving thread; ranks that
    were merely waiting unwind with this exception.
    """


class CollectiveMismatchError(ClusterError):
    """Ranks disagreed about which collective operation comes next.

    This mirrors the undefined behaviour an MPI program hits when ranks
    call collectives in different orders; we detect it instead.
    """


class RuntimeMisuseError(ClusterError):
    """An API was used outside the contract (e.g. bad rank, bad shape)."""


class RankCrashedError(ClusterError):
    """Control-flow exception unwinding a fail-stop-crashed rank.

    Raised *inside* the crashing rank's thread by the fault injector;
    the rank transitions to the scheduler's FAILED state instead of
    aborting the whole cluster.  User programs never see this type --
    survivors observe the death through :class:`RankFailedError` or the
    failure-detector API.
    """

    def __init__(self, rank: int, at_time: float):
        self.rank = rank
        self.at_time = at_time
        super().__init__(
            f"rank {rank} fail-stop crash at t={at_time:.6f}s"
        )


class RankFailedError(ClusterError):
    """A blocking operation involved a rank that has crashed.

    Raised in surviving ranks whose timed-out receive, collective, or
    RPC depended on a dead peer, and re-raised by the driver so callers
    (e.g. the engine's checkpoint-restart loop) can recover.  ``failed``
    lists the dead ranks involved.
    """

    def __init__(self, failed: Iterable[int], detail: str = ""):
        self.failed = sorted(set(int(r) for r in failed))
        self.detail = detail
        #: final per-rank virtual clocks of the aborted run, attached by
        #: the driver when available (None inside rank threads)
        self.rank_times = None
        msg = f"rank(s) {self.failed} failed"
        if detail:
            msg += f" during {detail}"
        super().__init__(msg)

    def __reduce__(self):
        # default exception pickling would replay __init__ with the
        # formatted message; rebuild from the structured fields instead
        # (the mp backend ships these across process boundaries)
        return (_rebuild_rank_failed, (self.failed, self.detail, self.rank_times))

    @property
    def wall_time(self) -> Optional[float]:
        """Virtual wall clock of the aborted run, when attached."""
        if self.rank_times is None:
            return None
        return float(max(self.rank_times))


class CommTimeoutError(ClusterError):
    """A blocking receive or collective exceeded its virtual-time
    timeout without any involved rank having failed.

    Distinguishing this from :class:`RankFailedError` lets programs
    separate "peer is dead" (recover via restart) from "peer is merely
    very slow or the program hung" (likely a bug or a straggler)."""

    def __init__(self, rank: int, detail: str, timeout: float):
        self.rank = rank
        self.detail = detail
        self.timeout = timeout
        super().__init__(
            f"rank {rank}: {detail} timed out after {timeout:.6f} "
            f"virtual seconds"
        )

    def __reduce__(self):
        return (CommTimeoutError, (self.rank, self.detail, self.timeout))


def _rebuild_rank_failed(failed, detail, rank_times):
    """Unpickle helper for :class:`RankFailedError`."""
    exc = RankFailedError(failed, detail)
    exc.rank_times = rank_times
    return exc


class TransientRpcError(ClusterError):
    """An ARMCI-style RPC failed transiently (injected network flake).

    Callers with idempotent handlers retry with backoff (see
    :meth:`repro.ga.hashmap.GlobalHashMap`); the fault injector decides
    deterministically which calls flake.
    """
