"""Exception types for the virtual-time SPMD runtime."""

from __future__ import annotations


class ClusterError(Exception):
    """Base class for all runtime errors."""


class DeadlockError(ClusterError):
    """Raised when every live rank is blocked and no wake-up can occur.

    Carries the set of blocked ranks and, when available, a short
    description of what each rank was blocked on.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        detail = ", ".join(f"rank {r}: {w}" for r, w in sorted(blocked.items()))
        super().__init__(f"deadlock: all live ranks blocked ({detail})")


class ClusterAborted(ClusterError):
    """Raised inside victim ranks when another rank failed.

    The original failure is re-raised in the driving thread; ranks that
    were merely waiting unwind with this exception.
    """


class CollectiveMismatchError(ClusterError):
    """Ranks disagreed about which collective operation comes next.

    This mirrors the undefined behaviour an MPI program hits when ranks
    call collectives in different orders; we detect it instead.
    """


class RuntimeMisuseError(ClusterError):
    """An API was used outside the contract (e.g. bad rank, bad shape)."""
