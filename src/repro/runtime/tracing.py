"""Virtual-time tracing of named program regions.

The engine wraps each pipeline component (scan, index, topic, AM,
DocVec, ClusProj) in ``ctx.region(name)``; the recorded spans are the
raw material for the paper's component-percentage and per-component
speedup figures (Figs. 6b, 7b, 8).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: set to a non-empty value (other than "0") to make every traced
#: region also record its *real* (perf_counter) extent; used by the
#: wall-clock benchmark harness (``repro.bench.wallclock``)
WALL_ENV = "REPRO_TRACE_WALL"


@dataclass(frozen=True)
class Span:
    """One traced region on one rank, in virtual seconds."""

    rank: int
    name: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class Instant:
    """A point event on one rank (fault injections, checkpoints)."""

    rank: int
    name: str
    t: float
    args: tuple = ()


class Tracer:
    """Collects spans from all ranks of one run."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        #: real-time spans (perf_counter seconds), only filled when
        #: the WALL_ENV environment variable enables capture; never
        #: part of the Chrome trace export, so the golden-trace
        #: determinism guarantee is unaffected
        self.wall_spans: list[Span] = []
        self._wall = os.environ.get(WALL_ENV, "") not in ("", "0")

    def record(self, rank: int, name: str, t_start: float, t_end: float) -> None:
        if t_end < t_start:
            raise ValueError(
                f"span {name!r} on rank {rank} ends before it starts"
            )
        self.spans.append(Span(rank, name, t_start, t_end))

    def instant(self, rank: int, name: str, t: float, args=None) -> None:
        """Record a point event (e.g. an injected fault firing)."""
        packed = tuple(sorted(args.items())) if args else ()
        self.instants.append(Instant(rank, name, t, packed))

    @contextmanager
    def region(self, rank: int, name: str, clock) -> Iterator[None]:
        """Record the virtual-time extent of the enclosed block."""
        t0 = clock.now
        w0 = time.perf_counter() if self._wall else 0.0
        try:
            yield
        finally:
            self.record(rank, name, t0, clock.now)
            if self._wall:
                self.wall_spans.append(
                    Span(rank, name, w0, time.perf_counter())
                )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def component_names(self) -> list[str]:
        """Region names in first-recorded order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.name, None)
        return list(seen)

    def per_rank_totals(self, name: str) -> np.ndarray:
        """Total virtual seconds spent in region ``name`` by each rank."""
        totals = np.zeros(self.nprocs)
        for s in self.spans:
            if s.name == name:
                totals[s.rank] += s.duration
        return totals

    def component_times(self) -> dict[str, float]:
        """Wall contribution of each component.

        Components in the engine are separated by barriers, so the wall
        time a component contributes is the maximum over ranks of the
        time spent inside it.
        """
        return {
            name: float(self.per_rank_totals(name).max())
            for name in self.component_names()
        }

    def component_percentages(self) -> dict[str, float]:
        """Each component's share of the summed component wall time."""
        times = self.component_times()
        total = sum(times.values())
        if total <= 0:
            return {k: 0.0 for k in times}
        return {k: 100.0 * v / total for k, v in times.items()}

    def wall_component_times(self) -> dict[str, float]:
        """Real elapsed window of each captured component, in seconds.

        Components are barrier-separated, so the wall-clock cost of a
        component is the window from the first rank entering it to the
        last rank leaving it.  Empty unless WALL_ENV capture was on.
        """
        windows: dict[str, tuple[float, float]] = {}
        for s in self.wall_spans:
            lo, hi = windows.get(s.name, (s.t_start, s.t_end))
            windows[s.name] = (min(lo, s.t_start), max(hi, s.t_end))
        return {k: hi - lo for k, (lo, hi) in windows.items()}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> list[dict]:
        """Spans as Chrome ``chrome://tracing`` / Perfetto events.

        Each rank appears as a thread; virtual seconds become
        microseconds.  Load the JSON dump of this list in a trace
        viewer to inspect a run's timeline.
        """
        events: list[dict] = []
        for s in self.spans:
            events.append(
                {
                    "name": s.name,
                    "cat": "virtual",
                    "ph": "X",
                    "ts": s.t_start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": 0,
                    "tid": s.rank,
                    "args": {"rank": s.rank},
                }
            )
        for i in self.instants:
            events.append(
                {
                    "name": i.name,
                    "cat": "fault",
                    "ph": "i",
                    "s": "t",
                    "ts": i.t * 1e6,
                    "pid": 0,
                    "tid": i.rank,
                    "args": dict(i.args, rank=i.rank),
                }
            )
        return events

    def write_chrome_trace(self, path) -> None:
        """Write :meth:`to_chrome_trace` output as a JSON file."""
        import json
        from pathlib import Path

        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_chrome_trace()))
