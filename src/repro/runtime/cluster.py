"""Top-level driver: run an SPMD function on a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .context import RankContext
from .machine import MachineSpec
from .scheduler import Scheduler, spawn_ranks
from .tracing import Tracer
from .world import World


@dataclass
class ClusterResult:
    """Outcome of one simulated run."""

    nprocs: int
    #: per-rank return values of the SPMD function
    rank_results: list[Any]
    #: per-rank final virtual clocks (seconds)
    rank_times: np.ndarray
    #: per-rank virtual seconds spent blocked (waiting on peers)
    blocked_times: np.ndarray = field(default=None)  # type: ignore[assignment]
    tracer: Tracer = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def wall_time(self) -> float:
        """Virtual wall-clock of the run: the slowest rank's clock."""
        return float(self.rank_times.max())

    @property
    def utilization(self) -> np.ndarray:
        """Per-rank fraction of its time spent not blocked.

        A rank that spends half its virtual time waiting at barriers
        or receives has utilization 0.5 -- the direct measure of load
        imbalance and synchronization overhead.
        """
        wall = np.maximum(self.rank_times, 1e-300)
        return 1.0 - self.blocked_times / wall


class Cluster:
    """A simulated cluster of ``nprocs`` ranks with a cost model.

    Example
    -------
    >>> from repro.runtime import Cluster
    >>> def program(ctx):
    ...     return ctx.comm.allreduce(ctx.rank + 1)
    >>> res = Cluster(4).run(program)
    >>> res.rank_results
    [10, 10, 10, 10]
    """

    def __init__(self, nprocs: int, machine: MachineSpec | None = None):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine if machine is not None else MachineSpec()

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> ClusterResult:
        """Execute ``fn(ctx, *args, **kwargs)`` on every rank.

        Blocks until all ranks complete; raises the first rank failure
        (or :class:`~repro.runtime.errors.DeadlockError`).
        """
        sched = Scheduler(self.nprocs)
        world = World(self.nprocs)
        tracer = Tracer(self.nprocs)
        contexts = [
            RankContext(r, world, sched, self.machine, tracer)
            for r in range(self.nprocs)
        ]

        def target(rank: int) -> Any:
            return fn(contexts[rank], *args, **kwargs)

        threads, results = spawn_ranks(sched, target)
        try:
            sched.wait_all()
        finally:
            for t in threads:
                t.join(timeout=30.0)
        times = np.array([sched.clocks[r].now for r in range(self.nprocs)])
        return ClusterResult(
            nprocs=self.nprocs,
            rank_results=list(results),
            rank_times=times,
            blocked_times=np.array(sched.blocked_time),
            tracer=tracer,
        )
