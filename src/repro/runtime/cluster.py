"""Top-level driver: run an SPMD function on a simulated cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .context import RankContext
from .errors import RankFailedError
from .faults import FaultInjector, FaultPlan
from .machine import MachineSpec
from .metrics import MetricsRegistry
from .scheduler import Scheduler, spawn_ranks
from .tracing import Tracer
from .world import World


@dataclass
class ClusterResult:
    """Outcome of one simulated run."""

    nprocs: int
    #: per-rank return values of the SPMD function
    rank_results: list[Any]
    #: per-rank final virtual clocks (seconds)
    rank_times: np.ndarray
    #: per-rank virtual seconds spent blocked (waiting on peers)
    blocked_times: np.ndarray = field(default=None)  # type: ignore[assignment]
    tracer: Tracer = field(repr=False, default=None)  # type: ignore[assignment]
    #: ranks that fail-stop crashed during the run (fault injection)
    failed_ranks: list[int] = field(default_factory=list)
    #: deterministic runtime metrics recorded during the run (see
    #: :mod:`repro.runtime.metrics`); call ``.snapshot()`` for JSON
    metrics: MetricsRegistry = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def wall_time(self) -> float:
        """Virtual wall-clock of the run: the slowest rank's clock."""
        return float(self.rank_times.max())

    @property
    def utilization(self) -> np.ndarray:
        """Per-rank fraction of its time spent not blocked.

        A rank that spends half its virtual time waiting at barriers
        or receives has utilization 0.5 -- the direct measure of load
        imbalance and synchronization overhead.
        """
        wall = np.maximum(self.rank_times, 1e-300)
        return 1.0 - self.blocked_times / wall


class Cluster:
    """A simulated cluster of ``nprocs`` ranks with a cost model.

    ``faults`` optionally attaches a :class:`FaultPlan` (or a live
    :class:`FaultInjector`, when a restart loop wants crash faults to
    stay consumed across attempts) to the run.

    Example
    -------
    >>> from repro.runtime import Cluster
    >>> def program(ctx):
    ...     return ctx.comm.allreduce(ctx.rank + 1)
    >>> res = Cluster(4).run(program)
    >>> res.rank_results
    [10, 10, 10, 10]
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineSpec | None = None,
        faults: FaultPlan | FaultInjector | None = None,
        backend: str = "sim",
    ):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if backend not in ("sim", "mp"):
            raise ValueError(
                f"backend must be 'sim' or 'mp', got {backend!r}"
            )
        self.nprocs = nprocs
        self.machine = machine if machine is not None else MachineSpec()
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.injector = faults
        self.backend = backend

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        raise_on_failure: bool = True,
        **kwargs: Any,
    ) -> ClusterResult:
        """Execute ``fn(ctx, *args, **kwargs)`` on every rank.

        Blocks until all ranks complete; raises the first rank failure
        (or :class:`~repro.runtime.errors.DeadlockError`).  Under fault
        injection, a run some ranks of which crashed raises
        :class:`~repro.runtime.errors.RankFailedError` unless
        ``raise_on_failure=False`` (then ``failed_ranks`` on the result
        reports the victims and their entries in ``rank_results`` stay
        ``None``).
        """
        if self.backend == "mp":
            from .mpbackend import run_mp

            return run_mp(
                self.nprocs,
                self.machine,
                self.injector,
                fn,
                args,
                kwargs,
                raise_on_failure=raise_on_failure,
            )
        world = World(self.nprocs)
        sched = Scheduler(
            self.nprocs, injector=self.injector, metrics=world.metrics
        )
        tracer = Tracer(self.nprocs)
        if self.injector is not None:
            self.injector.start_run(self.nprocs, tracer)
            world.comm_timeout = self.injector.comm_timeout_s
        contexts = [
            RankContext(r, world, sched, self.machine, tracer)
            for r in range(self.nprocs)
        ]

        def target(rank: int) -> Any:
            return fn(contexts[rank], *args, **kwargs)

        threads, results = spawn_ranks(sched, target)
        try:
            sched.wait_all()
        except RankFailedError as exc:
            if exc.rank_times is None:
                exc.rank_times = np.array(
                    [sched.clocks[r].now for r in range(self.nprocs)]
                )
            raise
        finally:
            for t in threads:
                t.join(timeout=30.0)
        times = np.array([sched.clocks[r].now for r in range(self.nprocs)])
        failed = sorted(sched.failed_at)
        if failed and raise_on_failure:
            # Every survivor finished without needing the dead ranks
            # (e.g. the crash hit after the last synchronization), but
            # the cluster still lost members: report it the same way a
            # mid-run detection would.
            exc = RankFailedError(failed, "run completion")
            exc.rank_times = times
            raise exc
        return ClusterResult(
            nprocs=self.nprocs,
            rank_results=list(results),
            rank_times=times,
            blocked_times=np.array(sched.blocked_time),
            tracer=tracer,
            failed_ranks=failed,
            metrics=world.metrics,
        )
