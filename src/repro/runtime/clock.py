"""Per-rank virtual clocks.

Every rank in a simulated cluster owns a :class:`VirtualClock`.  All
costs in the simulation (compute, communication, I/O) advance these
clocks; no wall-clock time is ever consulted, which is what makes runs
bit-reproducible.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically non-decreasing virtual clock, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds (must be >= 0)."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt!r}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t``; never moves it backwards."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.9f})"
