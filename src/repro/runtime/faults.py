"""Deterministic fault injection for the virtual-time runtime.

The paper's production context (IN-SPIRE on a 48-CPU cluster over a
shared filesystem and InfiniBand) implies node failures, stragglers,
and transient network glitches.  This module models them as *data*: a
:class:`FaultPlan` is a declarative, serializable list of fault events,
and a :class:`FaultInjector` replays the plan against the discrete-
event scheduler.  Because every trigger condition is expressed in
virtual time or per-rank operation counts -- never wall-clock time --
the same seed and plan reproduce the exact same failure scenario
bit-identically on every run.

Fault taxonomy
--------------
* :class:`CrashFault` -- fail-stop death of one rank, at a virtual
  time or at its Nth runtime call.  Survivors observe the death via
  timeouts (:class:`~repro.runtime.errors.RankFailedError`) and the
  failure-detector API on
  :class:`~repro.runtime.context.RankContext`.
* :class:`StragglerFault` -- per-rank CPU and network rate
  multipliers over a virtual-time window (slow node / flaky NIC).
* :class:`MessageDelayFault` -- extra transit latency for messages
  matching a (src, dst) pattern inside a window.
* :class:`MessageDropFault` -- the Nth message on a (src, dst)
  channel is "dropped" and redelivered after a retransmit delay,
  modelling a transient loss under a reliable transport.
* :class:`RpcFlakeFault` -- designated RPC calls from a rank raise
  :class:`~repro.runtime.errors.TransientRpcError`; idempotent callers
  retry with backoff.
* :class:`FsStallFault` -- shared-filesystem I/O slowdown over a
  window (e.g. a metadata-server hiccup), applied to ``charge_io``.

A plan with no faults is guaranteed zero-overhead: the injector then
returns neutral factors everywhere and never alters virtual times.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

from .errors import RankCrashedError

_INF = math.inf


def _window_contains(t_start: float, t_end: float, now: float) -> bool:
    return t_start <= now < t_end


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash of ``rank``.

    Fires at the first runtime call (synchronization point) where the
    rank's virtual clock has reached ``at_time``, or at its
    ``at_call``-th runtime call -- whichever is specified.  Each crash
    fault fires at most once per plan, even across checkpoint-restart
    attempts.
    """

    kind = "crash"
    rank: int
    at_time: Optional[float] = None
    at_call: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_time is None and self.at_call is None:
            raise ValueError("CrashFault needs at_time or at_call")


@dataclass(frozen=True)
class StragglerFault:
    """Rank ``rank`` runs slow by ``factor`` inside the window.

    ``factor`` multiplies every local virtual-time charge (CPU, I/O,
    send overhead); ``net_factor`` (default: ``factor``) multiplies the
    transit time of messages the rank sends.
    """

    kind = "straggler"
    rank: int
    factor: float
    net_factor: Optional[float] = None
    t_start: float = 0.0
    t_end: float = _INF

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1")


@dataclass(frozen=True)
class MessageDelayFault:
    """Extra transit seconds for matching messages in a window."""

    kind = "delay"
    extra_s: float
    src: Optional[int] = None
    dst: Optional[int] = None
    t_start: float = 0.0
    t_end: float = _INF


@dataclass(frozen=True)
class MessageDropFault:
    """The ``nth`` message (1-based) from ``src`` to ``dst`` is lost
    and retransmitted ``retransmit_s`` later."""

    kind = "drop"
    src: int
    dst: int
    nth: int
    retransmit_s: float = 1e-3


@dataclass(frozen=True)
class RpcFlakeFault:
    """RPC calls ``nth_calls`` (1-based, per caller) from ``rank``
    fail with :class:`~repro.runtime.errors.TransientRpcError`."""

    kind = "rpc"
    rank: int
    nth_calls: tuple[int, ...] = (1,)


@dataclass(frozen=True)
class FsStallFault:
    """Shared-FS I/O inside the window is ``factor`` times slower
    plus ``extra_s`` fixed stall, for ``ranks`` (None = every rank)."""

    kind = "fsstall"
    t_start: float
    t_end: float
    factor: float = 1.0
    extra_s: float = 0.0
    ranks: Optional[tuple[int, ...]] = None


_FAULT_TYPES = {
    cls.kind: cls
    for cls in (
        CrashFault,
        StragglerFault,
        MessageDelayFault,
        MessageDropFault,
        RpcFlakeFault,
        FsStallFault,
    )
}


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, replayable fault scenario.

    ``comm_timeout_s`` is the default virtual-time timeout applied to
    blocking receives and collectives while the plan is active -- the
    mechanism by which survivors detect a dead peer instead of
    deadlocking.  ``detection_latency_s`` is how long after a crash the
    failure-detector API reports the death (a heartbeat period).
    """

    faults: tuple = ()
    seed: int = 0
    comm_timeout_s: float = 60.0
    detection_latency_s: float = 1e-3

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.comm_timeout_s <= 0:
            raise ValueError("comm_timeout_s must be > 0")
        if self.detection_latency_s < 0:
            raise ValueError("detection_latency_s must be >= 0")

    @property
    def crash_faults(self) -> tuple[CrashFault, ...]:
        return tuple(f for f in self.faults if isinstance(f, CrashFault))

    # ------------------------------------------------------------------
    # serialization (the CLI's --fault-plan file format)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        faults = []
        for f in self.faults:
            d = {"kind": f.kind}
            for k, v in asdict(f).items():
                if v == _INF:
                    v = None
                if isinstance(v, tuple):
                    v = list(v)
                d[k] = v
            faults.append(d)
        return {
            "seed": self.seed,
            "comm_timeout_s": self.comm_timeout_s,
            "detection_latency_s": self.detection_latency_s,
            "faults": faults,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        faults = []
        for fd in d.get("faults", ()):
            fd = dict(fd)
            kind = fd.pop("kind")
            try:
                ftype = _FAULT_TYPES[kind]
            except KeyError:
                raise ValueError(f"unknown fault kind {kind!r}") from None
            if "t_end" in fd and fd["t_end"] is None:
                fd["t_end"] = _INF
            for key in ("nth_calls", "ranks"):
                if isinstance(fd.get(key), list):
                    fd[key] = tuple(fd[key])
            faults.append(ftype(**fd))
        return cls(
            faults=tuple(faults),
            seed=int(d.get("seed", 0)),
            comm_timeout_s=float(d.get("comm_timeout_s", 60.0)),
            detection_latency_s=float(d.get("detection_latency_s", 1e-3)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # generators
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        nprocs: int,
        seed: int = 0,
        n_crashes: int = 1,
        crash_window: tuple[float, float] = (0.0, 1.0),
        n_stragglers: int = 0,
        straggler_factor: float = 4.0,
        comm_timeout_s: float = 60.0,
    ) -> "FaultPlan":
        """Deterministically sample a scenario from ``seed``.

        Crash victims are distinct non-zero... any ranks; crash times
        are uniform in ``crash_window`` (virtual seconds).
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        faults: list = []
        victims = rng.permutation(nprocs)
        for i in range(min(n_crashes, nprocs - 1)):
            t = float(rng.uniform(*crash_window))
            faults.append(CrashFault(rank=int(victims[i]), at_time=t))
        for i in range(n_stragglers):
            r = int(victims[(n_crashes + i) % nprocs])
            faults.append(
                StragglerFault(rank=r, factor=float(straggler_factor))
            )
        return cls(
            faults=tuple(faults), seed=seed, comm_timeout_s=comm_timeout_s
        )


class FaultInjector:
    """Replays a :class:`FaultPlan` against one or more simulated runs.

    One injector may span several scheduler runs (the engine's
    checkpoint-restart attempts): crash faults already fired stay
    consumed, so a restarted attempt does not immediately re-kill the
    replacement topology.  Per-run counters (operation counts, message
    sequence numbers) reset at :meth:`start_run`.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._pending_crashes: list[CrashFault] = list(plan.crash_faults)
        self._stragglers = [
            f for f in plan.faults if isinstance(f, StragglerFault)
        ]
        self._delays = [
            f for f in plan.faults if isinstance(f, MessageDelayFault)
        ]
        self._drops = [
            f for f in plan.faults if isinstance(f, MessageDropFault)
        ]
        self._rpc_flakes = [
            f for f in plan.faults if isinstance(f, RpcFlakeFault)
        ]
        self._fs_stalls = [
            f for f in plan.faults if isinstance(f, FsStallFault)
        ]
        self._tracer = None
        self._ncalls: list[int] = []
        self._nrpc: list[int] = []
        self._msg_seq: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def has_crash_faults(self) -> bool:
        """Whether any (consumed or pending) crash faults exist."""
        return bool(self.plan.crash_faults)

    @property
    def comm_timeout_s(self) -> float:
        return self.plan.comm_timeout_s

    @property
    def detection_latency_s(self) -> float:
        return self.plan.detection_latency_s

    def start_run(self, nprocs: int, tracer=None) -> None:
        """Reset per-run state; called by the cluster driver."""
        self._tracer = tracer
        self._ncalls = [0] * nprocs
        self._nrpc = [0] * nprocs
        self._msg_seq = {}

    def _note(self, rank: int, name: str, t: float, args=None) -> None:
        if self._tracer is not None:
            self._tracer.instant(rank, name, t, args)

    # ------------------------------------------------------------------
    # scheduler hooks
    # ------------------------------------------------------------------
    def on_turn(self, rank: int, now: float) -> None:
        """Called once per runtime call of ``rank``; may crash it."""
        self._ncalls[rank] += 1
        ncalls = self._ncalls[rank]
        for f in self._pending_crashes:
            if f.rank != rank:
                continue
            due = (f.at_time is not None and now >= f.at_time) or (
                f.at_call is not None and ncalls >= f.at_call
            )
            if due:
                self._pending_crashes.remove(f)
                self._note(rank, "fault:crash", now)
                raise RankCrashedError(rank, now)

    def scale_compute(self, rank: int, now: float, dt: float) -> float:
        """Straggler multiplier applied to local virtual-time charges."""
        for f in self._stragglers:
            if f.rank == rank and _window_contains(f.t_start, f.t_end, now):
                dt *= f.factor
        return dt

    # ------------------------------------------------------------------
    # communication hooks
    # ------------------------------------------------------------------
    def adjust_transit(
        self, src: int, dst: int, now: float, transit: float
    ) -> float:
        """Transit time after stragglers, delay and drop faults."""
        for f in self._stragglers:
            if f.rank == src and _window_contains(f.t_start, f.t_end, now):
                nf = f.factor if f.net_factor is None else f.net_factor
                transit *= nf
        for f in self._delays:
            if f.src is not None and f.src != src:
                continue
            if f.dst is not None and f.dst != dst:
                continue
            if _window_contains(f.t_start, f.t_end, now):
                transit += f.extra_s
                self._note(src, "fault:msg-delay", now, {"dst": dst})
        if self._drops:
            seq = self._msg_seq.get((src, dst), 0) + 1
            self._msg_seq[(src, dst)] = seq
            for f in self._drops:
                if f.src == src and f.dst == dst and f.nth == seq:
                    transit += f.retransmit_s
                    self._note(
                        src, "fault:msg-drop", now, {"dst": dst, "nth": seq}
                    )
        return transit

    def rpc_fails(self, rank: int, target: int, now: float) -> bool:
        """Whether this rank's next RPC flakes (deterministic count)."""
        if not self._rpc_flakes:
            return False
        self._nrpc[rank] += 1
        n = self._nrpc[rank]
        for f in self._rpc_flakes:
            if f.rank == rank and n in f.nth_calls:
                self._note(rank, "fault:rpc-flake", now, {"target": target})
                return True
        return False

    def adjust_io(self, rank: int, now: float, dt: float) -> float:
        """Shared-FS stall multiplier/latency for one I/O charge."""
        for f in self._fs_stalls:
            if f.ranks is not None and rank not in f.ranks:
                continue
            if _window_contains(f.t_start, f.t_end, now):
                dt = dt * f.factor + f.extra_s
                self._note(rank, "fault:fs-stall", now)
        return dt
