"""Virtual-time SPMD runtime: the simulated cluster substrate.

This package replaces the paper's physical platform (MPI + Global
Arrays on an Itanium/InfiniBand cluster) with a deterministic
discrete-event simulation: the SPMD program's *computation* runs for
real, while *time* is modelled by a calibrated :class:`MachineSpec`.
See ``DESIGN.md`` §2 for why this substitution preserves the behaviour
under study.
"""

from .cluster import Cluster, ClusterResult
from .clock import VirtualClock
from .comm import Communicator, Request
from .context import RankContext
from .errors import (
    ClusterAborted,
    ClusterError,
    CollectiveMismatchError,
    CommTimeoutError,
    DeadlockError,
    RankCrashedError,
    RankFailedError,
    RuntimeMisuseError,
    TransientRpcError,
)
from .faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    FsStallFault,
    MessageDelayFault,
    MessageDropFault,
    RpcFlakeFault,
    StragglerFault,
)
from .machine import MachineSpec, Scale
from .metrics import (
    MetricsRegistry,
    MetricsSchemaError,
    comm_matrix,
    counter_totals,
    hashmap_locality,
    merge_snapshots,
    render_report,
    ingest_summary,
    serving_summary,
    stage_imbalance,
    to_prometheus,
    validate_snapshot,
    workbench_summary,
)
from .mpi import ANY_SOURCE, MAX, MIN, MPIComm, PROD, SUM
from .payload import payload_nbytes
from .scheduler import Scheduler
from .tracing import Span, Tracer
from .world import World

__all__ = [
    "Cluster",
    "ClusterResult",
    "Communicator",
    "Request",
    "ClusterAborted",
    "ClusterError",
    "CollectiveMismatchError",
    "CommTimeoutError",
    "CrashFault",
    "DeadlockError",
    "FaultInjector",
    "FaultPlan",
    "FsStallFault",
    "MessageDelayFault",
    "MessageDropFault",
    "RankCrashedError",
    "RankFailedError",
    "RpcFlakeFault",
    "StragglerFault",
    "TransientRpcError",
    "ANY_SOURCE",
    "MAX",
    "MIN",
    "MPIComm",
    "MachineSpec",
    "MetricsRegistry",
    "MetricsSchemaError",
    "PROD",
    "SUM",
    "comm_matrix",
    "counter_totals",
    "hashmap_locality",
    "merge_snapshots",
    "render_report",
    "ingest_summary",
    "serving_summary",
    "stage_imbalance",
    "to_prometheus",
    "validate_snapshot",
    "workbench_summary",
    "RankContext",
    "RuntimeMisuseError",
    "Scale",
    "Scheduler",
    "Span",
    "Tracer",
    "VirtualClock",
    "World",
    "payload_nbytes",
]
