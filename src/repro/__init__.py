"""repro: reproduction of *Scalable Visual Analytics of Massive
Textual Datasets* (Krishnan et al., IPPS 2007).

A from-scratch Python implementation of the parallel IN-SPIRE text
processing engine -- scanning, inverted-file indexing with dynamic
load balancing, Bookstein topicality, association-matrix knowledge
signatures, distributed k-means, and PCA projection -- running on a
deterministic virtual-time SPMD runtime with a Global-Arrays-style
global address space.

Quickstart
----------
>>> from repro.datasets import generate_pubmed
>>> from repro.engine import SerialTextEngine, EngineConfig
>>> corpus = generate_pubmed(target_bytes=200_000, seed=7)
>>> result = SerialTextEngine(EngineConfig()).run(corpus)
>>> result.coords.shape[1]
2
"""

__version__ = "1.0.0"
