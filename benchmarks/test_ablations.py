"""Ablation benchmarks for the design choices DESIGN.md calls out.

* fixed-size chunking granularity (Kruskal–Weiss): small loads balance
  better but pay more queue atomics; large loads amortize the queue
  but re-introduce imbalance;
* adaptive signature dimensionality (§4.2 remedy): null-signature
  fraction with and without the remedy;
* ARMCI-aggregated vocabulary registration vs per-term RPC inserts.
"""

from dataclasses import replace

import numpy as np

from repro.bench import default_figure_config
from repro.datasets import generate_trec
from repro.engine import EngineConfig, ParallelTextEngine, SerialTextEngine
from repro.ga import GlobalHashMap
from repro.runtime import Cluster

from conftest import write_report


def test_chunk_size_ablation(benchmark, out_dir):
    """Indexing wall/imbalance vs the fixed-size chunking parameter."""
    corpus = generate_trec(1_500_000, seed=11, max_body_tokens=2_000)
    base = default_figure_config()
    rows = []

    def run_chunk(chunk):
        cfg = replace(base, chunk_docs=chunk)
        res = ParallelTextEngine(8, config=cfg).run(corpus)
        per_rank = res.timings.extras["index_invert_per_rank"]
        return (
            float(per_rank.max()),
            float(per_rank.max() / per_rank.mean()),
        )

    for chunk in (1, 2, 4, 16, 64):
        wall, imb = run_chunk(chunk)
        rows.append((chunk, wall, imb))
    benchmark.pedantic(lambda: run_chunk(4), rounds=1, iterations=1)

    lines = ["Fixed-size chunking ablation (P=8, skewed TREC corpus)"]
    lines.append(f"{'chunk_docs':>10}  {'invert wall (s)':>16}  {'imbalance':>10}")
    for chunk, wall, imb in rows:
        lines.append(f"{chunk:>10}  {wall:>16.4f}  {imb:>10.3f}")
    write_report(out_dir, "ablation_chunksize.txt", "\n".join(lines))

    imb_by_chunk = {c: imb for c, _, imb in rows}
    # fine chunks balance better than the coarsest ones
    assert imb_by_chunk[1] < imb_by_chunk[64]


def test_adaptive_dimensionality_ablation(benchmark, out_dir):
    """Null-signature fraction with/without the §4.2 remedy."""
    from repro.text import Corpus, Document

    rng = np.random.default_rng(5)
    docs = []
    for i in range(120):
        word = f"theme{i % 40:02d}"
        filler = " ".join(
            f"bg{int(rng.integers(30)):02d}" for _ in range(20)
        )
        docs.append(Document(i, {"body": f"{word} {word} {filler}"}))
    corpus = Corpus("adapt-ablation", docs)

    def run(adapt):
        cfg = EngineConfig(
            n_major_terms=4,
            min_df=1,
            n_clusters=4,
            kmeans_sample=32,
            adapt_dimensionality=adapt,
            max_null_fraction=0.05,
            max_major_terms=128,
        )
        return SerialTextEngine(cfg).run(corpus)

    with_adapt = run(True)
    without = run(False)
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)

    lines = [
        "Adaptive dimensionality ablation (§4.2 remedy)",
        f"{'variant':>12}  {'N':>6}  {'rounds':>6}  {'null fraction':>14}",
        f"{'adaptive':>12}  {with_adapt.n_major:>6}  "
        f"{with_adapt.adapt_rounds:>6}  {with_adapt.null_fraction:>14.3f}",
        f"{'static':>12}  {without.n_major:>6}  "
        f"{without.adapt_rounds:>6}  {without.null_fraction:>14.3f}",
    ]
    write_report(out_dir, "ablation_adaptive.txt", "\n".join(lines))

    assert with_adapt.null_fraction < without.null_fraction
    assert with_adapt.adapt_rounds > 0


def test_hashmap_aggregation_ablation(benchmark, out_dir):
    """ARMCI-aggregated batch inserts vs one RPC per unique term."""
    words = [f"term{i:05d}" for i in range(3_000)]

    def run(batched):
        def program(ctx):
            hm = GlobalHashMap.create(ctx, "v")
            mine = words[ctx.rank :: ctx.nprocs]
            if batched:
                hm.get_or_insert_batch(mine)
            else:
                for w in mine:
                    hm.get_or_insert(w)
            ctx.comm.barrier()
            return ctx.now

        return Cluster(8).run(program).wall_time

    t_batched = run(True)
    t_per_term = run(False)
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)

    lines = [
        "Vocabulary registration ablation (8 ranks, 3000 unique terms)",
        f"  per-term RPC inserts : {t_per_term * 1e3:9.3f} ms (virtual)",
        f"  ARMCI-aggregated     : {t_batched * 1e3:9.3f} ms (virtual)",
        f"  speedup              : {t_per_term / t_batched:9.1f}x",
    ]
    write_report(out_dir, "ablation_hashmap.txt", "\n".join(lines))
    assert t_batched < t_per_term / 3
