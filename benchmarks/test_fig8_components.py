"""Figure 8: per-component speedup for both datasets.

The paper's four panels per dataset -- scanning, indexing, signature
generation, clustering & projection -- each scale near-linearly for
every problem size.  We assert each component's speedup grows with
processors and reaches a sane parallel efficiency at the top of the
sweep.
"""

from repro.bench import figure8, make_workload
from repro.engine import ParallelTextEngine

from conftest import _env_downscale, write_report


def test_figure8(benchmark, sweeps, out_dir):
    wl = make_workload("trec", "4.00 GB", 4.0e9, downscale=_env_downscale())
    cfg = sweeps[("trec", "4.00 GB")].config

    def one_run():
        return ParallelTextEngine(32, config=cfg).run(wl.corpus)

    benchmark.pedantic(one_run, rounds=1, iterations=1)

    rep = figure8(sweeps)
    write_report(out_dir, "figure8.txt", rep.text)

    for dataset in ("pubmed", "trec"):
        panels = rep.data[dataset]
        for group, payload in panels.items():
            procs = payload["procs"]
            for label, vals in payload.items():
                if label == "procs":
                    continue
                # speedup grows with processors
                assert all(
                    b > a for a, b in zip(vals, vals[1:])
                ), (dataset, group, label, vals)
            # heavyweight components reach decent efficiency for the
            # *largest* (most compute-bound) size at max P
            if group in ("Scanning", "Indexing"):
                big = [k for k in payload if k != "procs"][-1]
                eff = payload[big][-1] / procs[-1]
                assert eff > 0.45, (dataset, group, payload)
