"""Figure 5: overall wall-clock time vs processors (both datasets).

Regenerates the two panels of the paper's Figure 5 and checks their
shape: times fall near-linearly with processors for every problem
size, larger problems take proportionally longer, and the 16.44 GB
PubMed run is disproportionately slow at 4 processors (the memory-
pressure anomaly the paper reports).

The ``benchmark`` fixture times one representative full engine
simulation (PubMed 2.75 GB at 8 processors).
"""

from repro.bench import figure5, make_workload
from repro.engine import ParallelTextEngine

from conftest import _env_downscale, write_report


def test_figure5(benchmark, sweeps, out_dir):
    wl = make_workload(
        "pubmed", "2.75 GB", 2.75e9, downscale=_env_downscale()
    )
    cfg = sweeps[("pubmed", "2.75 GB")].config

    def one_run():
        return ParallelTextEngine(8, config=cfg).run(wl.corpus)

    benchmark.pedantic(one_run, rounds=1, iterations=1)

    rep = figure5(sweeps)
    write_report(out_dir, "figure5.txt", rep.text)

    for dataset in ("pubmed", "trec"):
        minutes = rep.data[dataset]["minutes"]
        procs = rep.data[dataset]["procs"]
        for label, vals in minutes.items():
            # monotone decrease with processors
            assert all(
                a > b for a, b in zip(vals, vals[1:])
            ), (dataset, label, vals)
    # size ordering at the largest proc count
    pm = rep.data["pubmed"]["minutes"]
    assert pm["16.44 GB"][-1] > pm["6.67 GB"][-1] > pm["2.75 GB"][-1]
    # the anomaly: 16.44 GB at the smallest P is far above a linear
    # extrapolation from the next size
    ratio_small = pm["16.44 GB"][0] / pm["6.67 GB"][0]
    ratio_large = pm["16.44 GB"][-1] / pm["6.67 GB"][-1]
    assert ratio_small > 2.0 * ratio_large
