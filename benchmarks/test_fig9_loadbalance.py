"""Figure 9: effectiveness of dynamic load balancing in indexing.

The paper shows that with the GA-atomic shared task queue, per-
processor indexing times stay flat while static partitioning leaves
them ragged.  We regenerate the per-rank table on the skewed TREC
corpus and additionally benchmark the §3.3 strategy comparison
(GA-atomic queue vs master-worker vs static) as an ablation.
"""

import numpy as np

from repro.baselines import run_ga_queue, run_master_worker, run_static
from repro.bench import figure9
from repro.runtime import Cluster

from conftest import write_report


def test_figure9(benchmark, out_dir):
    rep = benchmark.pedantic(
        lambda: figure9(nprocs=8), rounds=1, iterations=1
    )
    write_report(out_dir, "figure9.txt", rep.text)
    stats = rep.data["stats"]
    # dynamic balancing flattens the per-rank profile ...
    assert stats["dynamic"]["imbalance"] < stats["static"]["imbalance"]
    assert stats["dynamic"]["imbalance"] < 1.15
    # ... and does not hurt the indexing wall time
    assert stats["dynamic"]["wall"] <= stats["static"]["wall"] * 1.02
    dyn = np.array(rep.data["per_rank"]["dynamic LB"])
    stat = np.array(rep.data["per_rank"]["static LB"])
    assert dyn.std() < stat.std()


def test_strategy_ablation(benchmark, out_dir):
    """GA-atomic queue vs master-worker vs static across P (§3.3)."""
    rng = np.random.default_rng(3)

    def walls_for(nprocs):
        costs = [
            list(rng.uniform(0.5, 1.5, size=50) * 1e-4 * (1 + 3 * (r % 2)))
            for r in range(nprocs)
        ]
        out = {}
        for name, strat in (
            ("static", run_static),
            ("master-worker", run_master_worker),
            ("ga-queue", run_ga_queue),
        ):
            res = Cluster(nprocs).run(lambda ctx: strat(ctx, costs))
            out[name] = res.wall_time
        return out

    results = {p: walls_for(p) for p in (2, 4, 8, 16)}
    benchmark.pedantic(lambda: walls_for(8), rounds=1, iterations=1)

    lines = ["Load-balancing strategy ablation (virtual wall seconds)"]
    lines.append(f"{'P':>4}  {'static':>10}  {'master-worker':>14}  {'ga-queue':>10}")
    for p, w in results.items():
        lines.append(
            f"{p:>4}  {w['static']:>10.5f}  {w['master-worker']:>14.5f}  "
            f"{w['ga-queue']:>10.5f}"
        )
    write_report(out_dir, "fig9_ablation.txt", "\n".join(lines))

    for p, w in results.items():
        # the GA queue always beats static partitioning on skewed loads
        assert w["ga-queue"] < w["static"]
    # the master-worker bottleneck shows at scale
    assert results[16]["ga-queue"] < results[16]["master-worker"]
