"""Microbenchmarks of the engine's computational kernels.

These are *real-time* benchmarks (pytest-benchmark statistics) of the
hot paths: tokenization, FAST-INV inversion, signature generation,
k-means assignment, PCA, and the simulated runtime's own primitives
(collectives, atomics, hashmap inserts).
"""

import numpy as np

from repro.cluster import assign_points, kmeanspp_seeds
from repro.datasets import generate_pubmed
from repro.ga import GlobalArray, GlobalHashMap
from repro.index import invert_chunk
from repro.project import fit_pca
from repro.runtime import Cluster
from repro.signature import compute_signatures, major_lookup_arrays
from repro.text import Tokenizer
from repro.viz import build_themeview


def test_tokenizer_throughput(benchmark):
    corpus = generate_pubmed(200_000, seed=1)
    text = " ".join(d.fields["abstract"] for d in corpus)
    tok = Tokenizer()
    tokens = benchmark(tok.tokens, text)
    assert len(tokens) > 10_000


def test_fastinv_invert_chunk(benchmark):
    rng = np.random.default_rng(0)
    n = 200_000
    docs = np.sort(rng.integers(0, 2_000, size=n)).astype(np.int64)
    gids = rng.integers(0, 20_000, size=n).astype(np.int64)
    fields = docs * 3 + rng.integers(0, 3, size=n)
    fields = np.sort(fields)
    t2f, t2d = benchmark(invert_chunk, gids, docs, fields)
    assert len(t2d) > 0


def test_signature_generation(benchmark):
    rng = np.random.default_rng(1)
    n_major, n_topics = 1500, 150
    assoc = rng.random((n_major, n_topics))
    sorted_gids, positions = major_lookup_arrays(
        sorted(rng.choice(20_000, size=n_major, replace=False).tolist())
    )
    docs = [
        rng.integers(0, 20_000, size=200).astype(np.int64)
        for _ in range(300)
    ]
    batch = benchmark(
        compute_signatures, docs, sorted_gids, positions, assoc
    )
    assert batch.signatures.shape == (300, n_topics)


def test_kmeans_assignment_step(benchmark):
    rng = np.random.default_rng(2)
    points = rng.random((5_000, 150))
    centroids = kmeanspp_seeds(points[:500], 16, rng)
    labels, sq = benchmark(assign_points, points, centroids)
    assert labels.shape == (5_000,)


def test_pca_fit(benchmark):
    rng = np.random.default_rng(3)
    centroids = rng.random((16, 150))
    tr = benchmark(fit_pca, centroids, 2)
    assert tr.components.shape == (150, 2)


def test_themeview_build(benchmark):
    rng = np.random.default_rng(4)
    coords = rng.normal(size=(5_000, 2))
    view = benchmark(build_themeview, coords)
    assert view.heights.shape == (48, 48)


def test_runtime_allreduce(benchmark):
    """Real-time cost of a simulated 8-rank allreduce round."""

    def round_trip():
        def program(ctx):
            return ctx.comm.allreduce(np.ones(1000))

        return Cluster(8).run(program)

    res = benchmark(round_trip)
    assert res.nprocs == 8


def test_runtime_read_inc(benchmark):
    """Real-time cost of the GA fetch-and-increment hot loop."""

    def hot_loop():
        def program(ctx):
            ga = GlobalArray.create(ctx, "c", (1,), dtype=np.int64)
            ga.sync()
            for _ in range(50):
                ga.read_inc(0)
            ctx.comm.barrier()

        return Cluster(4).run(program)

    benchmark(hot_loop)


def test_hashmap_batch_insert(benchmark):
    words = [f"word{i}" for i in range(5_000)]

    def insert_all():
        def program(ctx):
            hm = GlobalHashMap.create(ctx, "v")
            part = words[ctx.rank :: ctx.nprocs]
            hm.get_or_insert_batch(part)
            ctx.comm.barrier()
            return hm.global_size()

        return Cluster(4).run(program)

    res = benchmark(insert_all)
    assert res.rank_results[0] == 5_000


def test_fastinv_order_loop(benchmark):
    """Explicit FAST-INV counting-sort loop (reference path).

    Compare against test_fastinv_order_vectorized to re-measure the
    FASTINV_LOOP_MAX crossover (2026-08 sweep: the loop loses at every
    size, 9.3us vs 1.5us at n=4 up to 500us vs 19us at n=1024, so the
    threshold is pinned at 0).
    """
    from repro.index.fastinv import _fastinv_order

    rng = np.random.default_rng(3)
    gids = rng.integers(0, 512, size=1024).astype(np.int64)
    order = benchmark(_fastinv_order, gids)
    assert order.shape == gids.shape


def test_fastinv_order_vectorized(benchmark):
    """Stable-argsort production path of the FAST-INV ordering."""
    from repro.index.fastinv import _fastinv_order_vectorized

    rng = np.random.default_rng(3)
    gids = rng.integers(0, 512, size=1024).astype(np.int64)
    order = benchmark(_fastinv_order_vectorized, gids)
    assert order.shape == gids.shape
