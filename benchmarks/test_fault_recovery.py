"""Recovery-overhead benchmark: crash mid-indexing, measure the cost.

For P in {4, 8, 16}, one rank fail-stop crashes halfway through the
inverted-file indexing stage.  The engine restarts on P-1 ranks from
the last completed stage checkpoint.  We report the virtual-time cost
of recovery -- wasted work in the failed attempt plus the (smaller)
surviving topology's completion time -- against the fault-free wall.
"""

from dataclasses import replace

from repro.bench import default_figure_config
from repro.datasets import generate_pubmed
from repro.engine import ParallelTextEngine
from repro.runtime import CrashFault, FaultPlan

from conftest import write_report

PROCS = (4, 8, 16)


def _fault_free(corpus, cfg, nprocs):
    return ParallelTextEngine(nprocs, config=cfg).run(corpus)


def _recovered(corpus, cfg, nprocs, crash_at, timeout):
    plan = FaultPlan(
        faults=(CrashFault(rank=nprocs // 2, at_time=crash_at),),
        # detection timeout tuned to the workload, as a deployment
        # tunes its heartbeat: a fraction of the fault-free wall
        comm_timeout_s=timeout,
    )
    return ParallelTextEngine(
        nprocs, config=replace(cfg, fault_plan=plan)
    ).run(corpus)


def test_fault_recovery_overhead(benchmark, out_dir):
    corpus = generate_pubmed(400_000, seed=7)
    cfg = default_figure_config()
    rows = []
    for nprocs in PROCS:
        clean = _fault_free(corpus, cfg, nprocs)
        cs = clean.timings.component_seconds
        crash_at = cs.get("scan", 0.0) + 0.5 * cs.get("index", 0.0)
        # must exceed the longest legitimate block (stage imbalance)
        # yet stay well below the run itself
        timeout = 0.5 * clean.timings.wall_time
        rec = _recovered(corpus, cfg, nprocs, crash_at, timeout)
        meta = rec.meta["recovery"]
        wasted = sum(a["wall_time"] for a in meta["failed_attempts"])
        total = wasted + rec.timings.wall_time
        rows.append(
            (
                nprocs,
                clean.timings.wall_time,
                wasted,
                rec.timings.wall_time,
                total,
                total / clean.timings.wall_time,
            )
        )
    benchmark.pedantic(
        lambda: _fault_free(corpus, cfg, PROCS[0]), rounds=1, iterations=1
    )

    lines = [
        "Recovery overhead: mid-indexing crash, checkpoint-restart on P-1",
        f"{'P':>4}  {'fault-free (s)':>14}  {'wasted (s)':>11}  "
        f"{'retry (s)':>10}  {'total (s)':>10}  {'overhead':>9}",
    ]
    for nprocs, clean_w, wasted, retry_w, total, ratio in rows:
        lines.append(
            f"{nprocs:>4}  {clean_w:>14.3f}  {wasted:>11.3f}  "
            f"{retry_w:>10.3f}  {total:>10.3f}  {ratio:>8.2f}x"
        )
    write_report(out_dir, "fault_recovery.txt", "\n".join(lines))

    for nprocs, clean_w, wasted, retry_w, total, ratio in rows:
        # recovery always costs something, but checkpoint reuse keeps
        # the total far below two full fault-free runs plus detection
        assert total > clean_w
        assert ratio < 3.0
