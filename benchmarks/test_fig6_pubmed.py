"""Figure 6: PubMed speedup (a) and component percentages (b).

Shape checks against the paper:
* speedup grows with processors for every size and stays within the
  near-linear band;
* the 16.44 GB curve is depressed at 4 processors (memory pressure)
  and recovers at 8+;
* component time percentages are roughly constant in P for every
  component except topicality, whose share grows with P (its
  merge/allreduce communication does not scale).
"""

import numpy as np

from repro.bench import figure6, make_workload
from repro.engine import ParallelTextEngine

from conftest import _env_downscale, write_report


def test_figure6(benchmark, sweeps, out_dir):
    wl = make_workload(
        "pubmed", "2.75 GB", 2.75e9, downscale=_env_downscale()
    )
    cfg = sweeps[("pubmed", "2.75 GB")].config

    def one_run():
        return ParallelTextEngine(16, config=cfg).run(wl.corpus)

    benchmark.pedantic(one_run, rounds=1, iterations=1)

    rep = figure6(sweeps)
    write_report(out_dir, "figure6.txt", rep.text)

    procs = rep.data["procs"]
    speedup = rep.data["speedup"]
    for label, vals in speedup.items():
        assert all(b > a for a, b in zip(vals, vals[1:])), (label, vals)
        # parallel efficiency at the top of the sweep stays sane for
        # the non-thrashing sizes
        if label != "16.44 GB":
            eff = vals[-1] / procs[-1]
            assert 0.5 < eff <= 1.1, (label, vals)
    # anomaly: 16.44 GB depressed at the smallest proc count
    assert (
        speedup["16.44 GB"][0]
        < 0.8 * speedup["2.75 GB"][0]
    )

    pct = rep.data["percentages"]
    # components' shares stay roughly constant in P ...
    for comp in ("scan", "index", "DocVec", "ClusProj"):
        key = comp if comp in pct else comp.lower()
        vals = np.array(pct[key])
        assert vals.max() - vals.min() < 12.0, (comp, vals)
    # ... except topicality, whose share must grow with P
    topic = pct["topic"]
    assert topic[-1] > topic[0]
