"""Interactive-query latency benchmark (the paper's "next frontier").

The conclusion argues the parallel engine "enables interactive
analysis of large datasets beyond capabilities of existing
state-of-the-art visual analytics tools".  This benchmark quantifies
that: per-query virtual latency of analyst interactions (similarity,
term search, landscape probe) against a represented multi-gigabyte
collection, across processor counts.
"""

from repro.analysis import Query, run_query_batch
from repro.bench import make_workload
from repro.engine import ParallelTextEngine
from repro.runtime import MachineSpec

from conftest import _env_downscale, write_report


def test_query_latency_scaling(benchmark, sweeps, out_dir):
    wl = make_workload(
        "pubmed", "2.75 GB", 2.75e9, downscale=_env_downscale()
    )
    cfg = sweeps[("pubmed", "2.75 GB")].config
    result = ParallelTextEngine(8, config=cfg).run(wl.corpus)
    machine = MachineSpec(workload_scale=wl.corpus.workload_scale())

    queries = [
        Query("similar", (0,), k=10),
        Query("terms", tuple(result.topic_term_strings[:3]), k=10),
        Query("nearest", (0.0, 0.0), k=10),
    ]

    def batch_at(nprocs):
        return run_query_batch(result, queries, nprocs, machine=machine)

    rows = {}
    for p in (1, 4, 16, 32):
        answers = batch_at(p)
        rows[p] = [a.latency_s * 1e3 for a in answers]
    benchmark.pedantic(lambda: batch_at(8), rounds=1, iterations=1)

    lines = [
        "Interactive query latency (virtual ms, PubMed 2.75 GB "
        "represented)",
        f"{'P':>4}  {'similar':>10}  {'terms':>10}  {'nearest':>10}",
    ]
    for p, (a, b, c) in rows.items():
        lines.append(f"{p:>4}  {a:>10.2f}  {b:>10.2f}  {c:>10.2f}")
    write_report(out_dir, "interaction_latency.txt", "\n".join(lines))

    # interaction latency shrinks strongly with processors ...
    for j in range(3):
        assert rows[32][j] < rows[1][j] / 8
    # ... and lands in interactive range at 32 procs (< 1 s each)
    assert all(v < 1000.0 for v in rows[32])
