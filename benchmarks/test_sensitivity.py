"""Machine-parameter sensitivity benchmarks.

The paper makes two qualitative claims about where the engine's
scaling limits sit; each becomes a parameter sweep here:

* "The scanning component is I/O bound as well as computationally
  bound.  In case of larger files and a large number of processors,
  the scanning component becomes I/O bound, which can be leveraged by
  using scalable parallel file systems (e.g., Lustre)" -- we sweep the
  shared filesystem's aggregate bandwidth and watch the scan
  component's scaling recover;
* "the topicality algorithm does not scale well ... because the
  communication cost predominates" -- we sweep network bandwidth and
  watch the topicality share respond while compute-bound components
  don't.
"""

from dataclasses import replace

from repro.bench import default_figure_config, make_workload
from repro.engine import ParallelTextEngine
from repro.runtime import MachineSpec

from conftest import write_report


def _scan_wall(machine, corpus, nprocs, cfg):
    res = ParallelTextEngine(nprocs, machine=machine, config=cfg).run(
        corpus
    )
    return res.timings.component_seconds["scan"], res.timings


def test_filesystem_bandwidth_sensitivity(benchmark, out_dir):
    wl = make_workload("pubmed", "2.75 GB", 2.75e9, downscale=10_000.0)
    cfg = default_figure_config()
    rows = []
    for fs_bw in (1e8, 3e8, 3e9, 1e10):
        machine = MachineSpec(fs_total_bytes_per_s=fs_bw)
        scan8, _ = _scan_wall(machine, wl.corpus, 8, cfg)
        scan32, _ = _scan_wall(machine, wl.corpus, 32, cfg)
        rows.append((fs_bw, scan8, scan32, scan8 / scan32))
    benchmark.pedantic(
        lambda: _scan_wall(MachineSpec(), wl.corpus, 8, cfg),
        rounds=1,
        iterations=1,
    )

    lines = [
        "Shared-FS bandwidth sensitivity of the scan component "
        "(PubMed 2.75 GB)",
        f"{'fs GB/s':>8}  {'scan@8 (s)':>11}  {'scan@32 (s)':>12}  "
        f"{'8->32 speedup':>14}",
    ]
    for fs_bw, s8, s32, ratio in rows:
        lines.append(
            f"{fs_bw / 1e9:>8.1f}  {s8:>11.2f}  {s32:>12.2f}  {ratio:>14.2f}"
        )
    write_report(out_dir, "sensitivity_fs.txt", "\n".join(lines))

    # a starved shared FS caps scan scaling; a Lustre-class FS restores it
    slow = rows[0][3]
    fast = rows[-1][3]
    assert fast > slow + 0.4
    assert fast > 2.9  # near-linear 8->32 with ample bandwidth
    assert slow < 2.5  # I/O-bound with a starved filesystem


def test_network_bandwidth_sensitivity(benchmark, out_dir):
    wl = make_workload("pubmed", "2.75 GB", 2.75e9, downscale=10_000.0)
    cfg = default_figure_config()
    rows = []
    for net_bw in (5e7, 8e8, 1e10):
        machine = MachineSpec(net_bytes_per_s=net_bw)
        res = ParallelTextEngine(32, machine=machine, config=cfg).run(
            wl.corpus
        )
        pct = res.timings.component_percentages
        rows.append((net_bw, pct["topic"], pct["scan"]))
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

    lines = [
        "Network bandwidth sensitivity at P=32 (PubMed 2.75 GB)",
        f"{'net GB/s':>9}  {'topic %':>8}  {'scan %':>8}",
    ]
    for net_bw, topic, scan in rows:
        lines.append(f"{net_bw / 1e9:>9.2f}  {topic:>8.2f}  {scan:>8.2f}")
    write_report(out_dir, "sensitivity_net.txt", "\n".join(lines))

    # topicality's share responds strongly to the interconnect; the
    # compute-bound scan share barely moves
    assert rows[0][1] > 1.5 * rows[-1][1]
    assert abs(rows[0][2] - rows[-1][2]) < 12.0


def test_chrome_trace_export(benchmark, out_dir, sweeps):
    """Timeline export of one engine run (tooling smoke test)."""
    import json

    wl = make_workload("trec", "1.00 GB", 1e9, downscale=10_000.0)
    cfg = sweeps[("trec", "1.00 GB")].config

    from repro.runtime import Cluster  # noqa: F401  (documentation import)
    from repro.engine.parallel import _engine_rank_main  # noqa: F401

    def run_and_export():
        from dataclasses import replace as _r

        from repro.runtime.cluster import Cluster as _C
        from repro.runtime.machine import MachineSpec as _M
        from repro.text.documents import partition_documents

        machine = _M().with_scale(wl.corpus.workload_scale())
        parts = partition_documents(wl.corpus.documents, 8)
        sim = _C(8, machine).run(
            _engine_rank_main, parts, wl.corpus.field_names, cfg
        )
        sim.tracer.write_chrome_trace(out_dir / "trace.json")
        return sim

    benchmark.pedantic(run_and_export, rounds=1, iterations=1)
    events = json.loads((out_dir / "trace.json").read_text())
    assert len(events) > 8 * 6  # >= one span per component per rank
    assert {e["tid"] for e in events} == set(range(8))
