"""Figure 7: TREC speedup (a) and component percentages (b).

Same shape checks as Figure 6 but on the GOV2-like corpus; none of the
TREC sizes trigger memory pressure, so every curve should be
near-linear (as in the paper, which shows linear speedup for all three
TREC sizes).
"""

import numpy as np

from repro.bench import figure7, make_workload
from repro.engine import ParallelTextEngine

from conftest import _env_downscale, write_report


def test_figure7(benchmark, sweeps, out_dir):
    wl = make_workload("trec", "1.00 GB", 1.0e9, downscale=_env_downscale())
    cfg = sweeps[("trec", "1.00 GB")].config

    def one_run():
        return ParallelTextEngine(16, config=cfg).run(wl.corpus)

    benchmark.pedantic(one_run, rounds=1, iterations=1)

    rep = figure7(sweeps)
    write_report(out_dir, "figure7.txt", rep.text)

    procs = rep.data["procs"]
    for label, vals in rep.data["speedup"].items():
        assert all(b > a for a, b in zip(vals, vals[1:])), (label, vals)
        eff = vals[-1] / procs[-1]
        assert 0.5 < eff <= 1.1, (label, vals)

    pct = rep.data["percentages"]
    for comp in ("scan", "index", "DocVec", "ClusProj"):
        vals = np.array(pct[comp])
        assert vals.max() - vals.min() < 12.0, (comp, vals)
    assert pct["topic"][-1] > pct["topic"][0]
    # percentages sum to 100 at every P
    for j in range(len(procs)):
        assert abs(sum(v[j] for v in pct.values()) - 100.0) < 0.5
