"""Shared fixtures for the figure-reproduction benchmarks.

The full evaluation grid (both datasets, three sizes, four processor
counts, plus serial baselines) is simulated once per session; each
figure benchmark renders its tables from the cached sweeps and writes
them under ``benchmarks/out/`` for inspection.

Environment knobs:

* ``REPRO_BENCH_DOWNSCALE`` -- generated-to-represented ratio
  (default 10000; higher = faster, smaller corpora);
* ``REPRO_BENCH_PROCS`` -- comma-separated processor counts
  (default ``4,8,16,32``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import run_all_sweeps

OUT_DIR = Path(__file__).parent / "out"


def _env_downscale() -> float:
    return float(os.environ.get("REPRO_BENCH_DOWNSCALE", "10000"))


def _env_procs() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_PROCS", "4,8,16,32")
    return tuple(int(x) for x in raw.split(","))


@pytest.fixture(scope="session")
def sweeps():
    return run_all_sweeps(
        downscale=_env_downscale(),
        procs=_env_procs(),
        seed=7,
    )


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


@pytest.fixture(autouse=True)
def _reap_mp_children():
    """Join any worker processes a benchmark left behind.

    Benchmarks that exercise the mp execution backend fork one OS
    process per rank; a test that errors mid-run can strand them.
    Unjoined children trip ``pytest -W error`` at interpreter exit
    (multiprocessing emits ResourceWarning/UserWarning for leaked
    processes and shared_memory segments), so every benchmark joins
    its children -- with a timeout and a terminate fallback -- before
    the next one starts.
    """
    from repro.bench.wallclock import reap_children

    yield
    leaked = reap_children(timeout=10.0)
    assert not leaked, f"benchmark leaked child processes: {leaked}"


def write_report(out_dir: Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text + "\n")
    print(f"\n{text}\n")
